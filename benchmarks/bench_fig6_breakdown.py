"""Figure 6 — interaction between optimizations and autotuning.

For every benchmark, eight versions are generated: {global, sh+reg} x
{base, TB, unroll, misc}:

* ``base``  — fixed thread blocks, no optimizations: (32,16) for
  iterative 3-D stencils with streaming, (16,16) for register-
  constrained spatial stencils with streaming, (16,4,4) non-streaming;
* ``TB``    — autotuned thread-block size only;
* ``unroll``— baseline block, autotuned unroll factors only;
* ``misc``  — everything enabled (unrolling, TB variation, prefetching,
  retiming, folding, load/compute adjustment, concurrent streaming).

Paper shapes: TB variation helps broadly; unrolling helps the shared-
memory versions of the iterative stencils but not the register-
constrained spatial ones; misc wins overall.
"""

from typing import Dict, Optional

import pytest

from repro.codegen import KernelPlan, ProgramPlan
from repro.codegen.generator import schedule_tflops
from repro.codegen.resources import auto_assign, seed_plan_from_pragma
from repro.gpu import P100
from repro.gpu.simulator import PlanInfeasible, simulate
from repro.suite import BENCHMARKS, get
from repro.tuning.hierarchical import HierarchicalTuner

from _cache import fmt, ir_of, print_table

BLOCKS_2D = [(8, 16), (16, 16), (32, 16), (16, 32), (32, 32), (8, 32),
             (64, 8), (8, 64)]
BLOCKS_3D = [(4, 4, 16), (4, 8, 16), (8, 8, 16), (4, 4, 32), (2, 8, 32),
             (4, 16, 16), (8, 8, 8), (4, 8, 32)]
UNROLLS = [(1, 1, 1), (1, 1, 2), (1, 2, 1), (1, 2, 2), (1, 1, 4),
           (1, 4, 1), (1, 2, 4), (1, 4, 2)]


def _seed(ir, instance, shared: bool):
    spec_iterative = ir.is_iterative
    if shared:
        block = (32, 16) if spec_iterative else (16, 16)
        plan = KernelPlan(
            kernel_names=(instance.name,),
            block=block,
            streaming="serial",
            stream_axis=0,
            placements=instance.placements,
        )
        return auto_assign(ir, plan).plan
    return KernelPlan(
        kernel_names=(instance.name,),
        block=(4, 4, 16),
        streaming="none",
    )


def _best_over(ir, plans) -> Optional[float]:
    best = None
    for plan in plans:
        try:
            sim = simulate(ir, plan, P100)
        except PlanInfeasible:
            continue
        if sim.counters.has_spills:
            continue
        if best is None or sim.time_s < best[0]:
            best = (sim.time_s, sim)
    if best is None:
        return None
    return best[1]


def _program_tflops(ir, per_kernel_sims) -> Optional[float]:
    if any(sim is None for sim in per_kernel_sims):
        return None
    total = sum(sim.time_s for sim in per_kernel_sims)
    useful = sum(sim.counters.useful_flops for sim in per_kernel_sims)
    return useful / total / 1e12 if total else None


def _variant(ir, shared: bool, mode: str) -> Optional[float]:
    sims = []
    for instance in ir.kernels:
        seed = _seed(ir, instance, shared)
        if mode == "base":
            plans = [seed]
        elif mode == "TB":
            blocks = BLOCKS_2D if seed.uses_streaming else BLOCKS_3D
            plans = [seed.replace(block=b) for b in blocks]
        elif mode == "unroll":
            plans = [seed.replace(unroll=u) for u in UNROLLS]
        else:  # misc: the full hierarchical tuner
            tuner = HierarchicalTuner(
                ir, device=P100, use_register_opts=True, top_k=2
            )
            try:
                result = tuner.tune(seed)
            except PlanInfeasible:
                sims.append(None)
                continue
            sims.append(simulate(ir, result.best_plan, P100))
            continue
        # For base/TB/unroll, escalate registers so spills don't mask
        # the comparison (same policy as the tuner).
        expanded = []
        for plan in plans:
            for regs in (32, 64, 128, 255):
                expanded.append(plan.replace(max_registers=regs))
        sims.append(_best_over(ir, expanded))
    return _program_tflops(ir, sims)


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_fig6_breakdown(benchmark, name):
    ir = ir_of(name)

    def run_all() -> Dict[str, Optional[float]]:
        out = {}
        for shared in (False, True):
            tag = "sh+reg" if shared else "global"
            for mode in ("base", "TB", "unroll", "misc"):
                out[f"{tag}:{mode}"] = _variant(ir, shared, mode)
        return out

    results = benchmark.pedantic(
        run_all, rounds=1, iterations=1, warmup_rounds=0
    )
    print_table(
        f"Figure 6: {name} (TFLOPS)",
        ["variant", "global", "sh+reg"],
        [
            [
                mode,
                fmt(results[f"global:{mode}"]),
                fmt(results[f"sh+reg:{mode}"]),
            ]
            for mode in ("base", "TB", "unroll", "misc")
        ],
    )

    # Shapes: tuning a knob never loses to the fixed baseline, and the
    # all-optimizations version is the best of its column.
    for tag in ("global", "sh+reg"):
        base = results[f"{tag}:base"]
        if base is None:
            continue
        for mode in ("TB", "unroll"):
            value = results[f"{tag}:{mode}"]
            if value is not None:
                assert value >= base * 0.999, (name, tag, mode)
        misc = results[f"{tag}:misc"]
        if misc is not None:
            assert misc >= base * 0.98, (name, tag)


def test_fig6_unrolling_helps_iterative_not_spatial(benchmark):
    """§VIII-G: 'Unrolling helps the shared memory versions of the
    iterative stencils where register pressure is not a performance
    limiter' — and the profiler suppresses it for spatial stencils."""

    def run():
        smoother = ir_of("7pt-smoother")
        gain_iterative = (
            _variant(smoother, True, "unroll")
            / _variant(smoother, True, "base")
        )
        spatial = ir_of("rhs4center")
        base = _variant(spatial, True, "base")
        unrolled = _variant(spatial, True, "unroll")
        gain_spatial = (unrolled / base) if (base and unrolled) else 1.0
        return gain_iterative, gain_spatial

    gain_iterative, gain_spatial = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    print(f"\nunroll gain: iterative (7pt, sh+reg) {gain_iterative:.3f}x "
          f"vs spatial (rhs4center, sh+reg) {gain_spatial:.3f}x")
    assert gain_iterative > 1.01
    assert gain_iterative > gain_spatial
