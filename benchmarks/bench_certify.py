"""Certification-prescreen overhead: certifier on vs off, same winners.

The RL3xx transformation certifier runs inside ``PlanEvaluator``'s
legality prescreen on every candidate (docs/certification.md).  Tuner
candidates are single-kernel serial launches the certifier proves
legal trivially, so the contract is twofold: **winners are
byte-identical** with the certifier on or off, and the certification
work adds **under 5% engine wall time**.  Each mode runs ``REPEATS``
times and the best (least noisy) engine wall is compared.  Results
land in ``BENCH_certify.json``.
"""

import json
import os
import time

import pytest

from repro.lint import certification_disabled
from repro.pipeline import optimize

from _cache import fmt, ir_of, print_table

KERNELS = ("7pt-smoother", "addsgd4")
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_certify.json")
REPEATS = 3
#: Acceptance: certifying every candidate may add at most 5% to the
#: engine's busy time (ISSUE contract).  The engine wall is used, not
#: process wall-clock, to keep the gate meaningful on noisy CI boxes.
MAX_OVERHEAD = 0.05

_results = {}


def _best_run(ir):
    best = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        outcome = optimize(ir, top_k=2)
        wall = time.perf_counter() - start
        engine_wall = outcome.eval_stats.wall_s
        if best is None or engine_wall < best[1]:
            best = (outcome, engine_wall, wall)
    return best


@pytest.mark.parametrize("name", KERNELS)
def test_certify_overhead(name):
    ir = ir_of(name)

    # Warm the process-level caches (FamilyStructure memo, analysis
    # caches) so neither timed mode pays cold-start costs.
    optimize(ir, top_k=2)

    certified, on_engine_wall, on_wall = _best_run(ir)
    with certification_disabled():
        baseline, off_engine_wall, off_wall = _best_run(ir)

    # Contract 1: the certifier never moves a winner — tuner candidates
    # are single-kernel serial sweeps it certifies trivially.
    assert certified.schedule == baseline.schedule
    assert certified.tflops == baseline.tflops
    assert certified.variant == baseline.variant
    assert (
        certified.eval_stats.requests == baseline.eval_stats.requests
    ), "certifier changed how many candidates were evaluated"
    assert (
        certified.eval_stats.screened == baseline.eval_stats.screened
    ), "certifier screened candidates the baseline priced (or vice versa)"
    stats = certified.eval_stats
    assert stats.lint_rejections == stats.screened

    # Contract 2: < 5% added engine wall time.
    overhead = on_engine_wall / off_engine_wall - 1.0
    assert overhead < MAX_OVERHEAD, (
        f"certification prescreen added {overhead * 100:.1f}% engine wall "
        f"({on_engine_wall:.4f}s vs {off_engine_wall:.4f}s)"
    )

    _results[name] = {
        "certifier_on": {
            "engine_wall_s": round(on_engine_wall, 4),
            "wall_s": round(on_wall, 4),
            "requests": stats.requests,
            "screened": stats.screened,
            "lint_rejections": stats.lint_rejections,
        },
        "certifier_off": {
            "engine_wall_s": round(off_engine_wall, 4),
            "wall_s": round(off_wall, 4),
            "requests": baseline.eval_stats.requests,
            "screened": baseline.eval_stats.screened,
        },
        "overhead": round(overhead, 4),
        "max_overhead": MAX_OVERHEAD,
        "repeats": REPEATS,
        "tflops": certified.tflops,
        "identical_schedule": True,
    }

    print_table(
        f"certification prescreen overhead: {name}",
        ["quantity", "certifier on", "certifier off"],
        [
            ["requests", stats.requests, baseline.eval_stats.requests],
            ["screened", stats.screened, baseline.eval_stats.screened],
            ["engine wall (s)", fmt(on_engine_wall), fmt(off_engine_wall)],
            ["wall-clock (s)", fmt(on_wall), fmt(off_wall)],
            ["overhead", f"{overhead * 100:+.1f}%", f"< {MAX_OVERHEAD:.0%}"],
        ],
    )


def test_write_bench_json():
    # Runs after the parametrized cases (pytest preserves file order).
    from repro.resilience import atomic_write_json

    assert set(_results) == set(KERNELS)
    atomic_write_json(OUT_PATH, _results, indent=2, sort_keys=True)
