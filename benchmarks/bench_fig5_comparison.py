"""Figure 5 — performance of all five code generators on all benchmarks.

Bars: PPCG, global-stream, global, STENCILGEN, ARTEMIS.  The paper's
shape: ARTEMIS wins everywhere, STENCILGEN is the strongest prior (but
cannot generate code for the SW4lite kernels), the tuned global version
beats global-stream, and PPCG trails.
"""

import pytest

from repro.suite import BENCHMARKS

from _cache import artemis, baseline, fmt, print_table

#: Figure 5 bar heights (TFLOPS).  Values marked exact are stated in
#: the paper's text; the rest are read off the figure.
PAPER = {
    "7pt-smoother": dict(ppcg=0.10, gstream=0.22, glob=0.28, sg=0.55,
                         artemis=0.70),
    "27pt-smoother": dict(ppcg=0.15, gstream=0.45, glob=0.60, sg=1.20,
                          artemis=1.55),
    "helmholtz": dict(ppcg=0.12, gstream=0.30, glob=0.40, sg=0.70,
                      artemis=0.90),
    "denoise": dict(ppcg=0.20, gstream=0.40, glob=0.55, sg=0.85,
                    artemis=1.05),
    "miniflux": dict(ppcg=0.15, gstream=0.25, glob=0.35, sg=0.50,
                     artemis=0.60),
    "hypterm": dict(ppcg=0.25, gstream=0.45, glob=0.75, sg=0.80,
                    artemis=0.95),
    "diffterm": dict(ppcg=0.30, gstream=0.50, glob=0.80, sg=0.90,
                     artemis=1.10),
    "addsgd4": dict(ppcg=0.30, gstream=0.45, glob=0.80, sg=None,
                    artemis=1.05),  # 1.05 stated in §VIII-E
    "addsgd6": dict(ppcg=0.35, gstream=0.55, glob=0.90, sg=None,
                    artemis=1.20),
    "rhs4center": dict(ppcg=0.40, gstream=0.60, glob=1.00, sg=None,
                       artemis=1.29),  # 1.29 stated in §VIII-F
    "rhs4sgcurv": dict(ppcg=0.35, gstream=0.55, glob=0.90, sg=None,
                       artemis=1.048),  # 1.048 stated in §VIII-D
}


@pytest.mark.parametrize("name", list(BENCHMARKS))
def test_fig5_benchmark(benchmark, name):
    def run_all():
        return {
            "ppcg": baseline(name, "ppcg"),
            "gstream": baseline(name, "global-stream"),
            "glob": baseline(name, "global"),
            "sg": baseline(name, "stencilgen"),
            "artemis": artemis(name),
        }

    results = benchmark.pedantic(
        run_all, rounds=1, iterations=1, warmup_rounds=0
    )
    sg = results["sg"]
    measured = {
        "ppcg": results["ppcg"].tflops,
        "gstream": results["gstream"].tflops,
        "glob": results["glob"].tflops,
        "sg": sg.tflops if sg.supported else None,
        "artemis": results["artemis"].tflops,
    }
    paper = PAPER[name]
    print_table(
        f"Figure 5: {name} (TFLOPS, measured | paper)",
        ["generator", "measured", "paper"],
        [
            [gen, fmt(measured[gen]), fmt(paper[gen], 2)]
            for gen in ("ppcg", "gstream", "glob", "sg", "artemis")
        ],
    )

    # Shape assertions shared by every benchmark:
    # ARTEMIS wins; global beats global-stream; STENCILGEN availability
    # matches the paper (absent exactly on the SW4lite kernels).
    assert measured["artemis"] >= max(
        v for v in measured.values() if v is not None
    ) * 0.999, name
    assert measured["glob"] > measured["gstream"], name
    sw4 = name in ("addsgd4", "addsgd6", "rhs4center", "rhs4sgcurv")
    if paper["sg"] is None:
        assert measured["sg"] is None or not sw4 or measured["sg"] is None
        if sw4 and name in ("addsgd4", "addsgd6"):
            assert measured["sg"] is None, "mixed-rank SW4 must be rejected"
    else:
        assert measured["sg"] is not None
        # STENCILGEN is the strongest prior generator where it runs.
        # Deviation (documented in EXPERIMENTS.md): for miniflux the
        # fully-fused all-shared mapping does not fit the modeled device,
        # so our STENCILGEN falls back to unfused kernels and lands below
        # the tuned global version; the paper's figure has it above.
        if name != "miniflux":
            assert measured["sg"] > measured["glob"], name
