"""§VIII-D — exploring fission candidates for rhs4sgcurv.

The monolithic (maxfuse) kernel spills registers even at 255 per
thread; the trivial-fission version ARTEMIS generates splits it into
three spill-free sub-kernels and wins decisively.

Paper: trivial-fission 1.048 TFLOPS vs maxfuse 0.48 TFLOPS (2.18x).
"""

import pytest

from repro.codegen.resources import auto_assign, seed_plan_from_pragma
from repro.gpu import P100, simulate
from repro.tuning import generate_fission_candidates
from repro.tuning.hierarchical import HierarchicalTuner

from _cache import fmt, ir_of, print_table

PAPER = {"maxfuse": 0.48, "trivial-fission": 1.048}


def _evaluate(candidate):
    total_time, useful = 0.0, 0.0
    spills = []
    for instance in candidate.ir.kernels:
        seed = auto_assign(
            candidate.ir, seed_plan_from_pragma(candidate.ir, instance)
        ).plan
        tuner = HierarchicalTuner(candidate.ir, device=P100, top_k=2)
        result = tuner.tune(seed)
        sim = simulate(candidate.ir, result.best_plan, P100)
        total_time += sim.time_s
        useful += sim.counters.useful_flops
        spills.append(sim.counters.spilled_registers)
    return useful / total_time / 1e12, spills


def test_sec8d_fission_candidates(benchmark):
    ir = ir_of("rhs4sgcurv")

    def run():
        out = {}
        for candidate in generate_fission_candidates(ir):
            out[candidate.label] = (candidate, *_evaluate(candidate))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)

    rows = []
    for label, (candidate, tflops, spills) in results.items():
        rows.append(
            [
                label,
                len(candidate.ir.kernels),
                fmt(tflops),
                fmt(PAPER.get(label), 3),
                spills,
            ]
        )
    print_table(
        "§VIII-D: rhs4sgcurv fission candidates (measured | paper)",
        ["candidate", "kernels", "TFLOPS", "paper", "spilled regs"],
        rows,
    )

    maxfuse_tflops = results["maxfuse"][1]
    trivial_tflops = results["trivial-fission"][1]
    maxfuse_spills = results["maxfuse"][2]
    trivial_spills = results["trivial-fission"][2]

    # The monolith spills even at 255 registers; the split does not.
    assert any(s > 0 for s in maxfuse_spills)
    assert all(s == 0 for s in trivial_spills)
    assert len(results["trivial-fission"][0].ir.kernels) == 3
    # Fission outperforms the monolith significantly (paper: 2.18x).
    assert trivial_tflops > 1.5 * maxfuse_tflops

    # The candidates are emitted as DSL files (Figure 3c) that re-parse.
    from repro.dsl import parse
    from repro.ir import build_ir

    for candidate, _, _ in results.values():
        assert build_ir(parse(candidate.dsl)).kernels
