"""§V — hierarchical autotuning cost vs exhaustive search.

The paper: OpenTuner took over 24 hours for exhaustive tuning of a
7-point Jacobi; hierarchical tuning reached similar performance in
under 5 hours.  Here the comparison is in *evaluations*: the pruned,
staged space vs the unpruned cross-product an exhaustive tuner faces.
"""

import pytest

from repro.codegen.resources import auto_assign, seed_plan_from_pragma
from repro.gpu import P100
from repro.tuning import SearchSpace, exhaustive_space_size
from repro.tuning.hierarchical import HierarchicalTuner

from _cache import fmt, ir_of, print_table


def test_sec5_hierarchical_vs_exhaustive(benchmark):
    ir = ir_of("7pt-smoother")
    instance = ir.kernels[0]
    seed = auto_assign(ir, seed_plan_from_pragma(ir, instance)).plan

    def run():
        tuner = HierarchicalTuner(ir, device=P100, use_register_opts=True)
        result = tuner.tune(seed)
        return tuner, result

    tuner, result = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )

    space = SearchSpace(ndim=3, streaming=True)
    pruned = space.size()
    exhaustive = exhaustive_space_size(3, True)

    print_table(
        "§V: tuning-space census for 7pt-smoother",
        ["quantity", "value"],
        [
            ["exhaustive space (OpenTuner-style)", f"{exhaustive:.2e}"],
            ["pruned stage-1 space (blocks x unrolls)", pruned],
            ["stage-1 evaluations", result.stage1_evaluations],
            ["total evaluations (incl. stage 2)", result.evaluations],
            ["best version", result.best_plan.describe()],
            ["best TFLOPS", fmt(result.best.tflops)],
        ],
    )

    # The hierarchy evaluates orders of magnitude fewer candidates.
    assert result.evaluations * 1000 < exhaustive
    assert result.evaluations < 10 * pruned
