"""Shared, memoized experiment drivers for the benchmark harness.

Figure 5, Figure 6 and several section-level benches need the same
expensive artifacts (tuned ARTEMIS outcomes, baseline runs, deep-tuning
sweeps).  Everything here is cached per benchmark name so one pytest
session computes each artifact once.
"""

from __future__ import annotations

import functools
from typing import Dict, Optional

from repro.baselines import (
    BaselineResult,
    run_global,
    run_global_stream,
    run_ppcg,
    run_stencilgen,
)
from repro.ir import ProgramIR
from repro.pipeline import OptimizationOutcome, optimize
from repro.suite import load_ir
from repro.tuning import DeepTuningResult, deep_tune


@functools.lru_cache(maxsize=None)
def ir_of(name: str) -> ProgramIR:
    return load_ir(name)


@functools.lru_cache(maxsize=None)
def artemis(name: str) -> OptimizationOutcome:
    return optimize(ir_of(name), top_k=2)


@functools.lru_cache(maxsize=None)
def baseline(name: str, generator: str) -> BaselineResult:
    runner = {
        "ppcg": run_ppcg,
        "global": run_global,
        "global-stream": run_global_stream,
        "stencilgen": run_stencilgen,
    }[generator]
    return runner(ir_of(name))


@functools.lru_cache(maxsize=None)
def deep(name: str) -> DeepTuningResult:
    return deep_tune(ir_of(name), top_k=2)


def fmt(value: Optional[float], digits: int = 3) -> str:
    if value is None:
        return "N/A"
    return f"{value:.{digits}f}"


def print_table(title: str, header: list, rows: list) -> None:
    widths = [
        max(len(str(header[col])), *(len(str(r[col])) for r in rows))
        for col in range(len(header))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
