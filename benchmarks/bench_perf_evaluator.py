"""Evaluation-engine speedup: full pipeline tune with the engine on/off.

Times ``pipeline.optimize()`` for one temporal kernel (7pt-smoother) and
one spatial kernel (addsgd4) twice: through the default shared
``PlanEvaluator`` (memoized, incremental escalation, occupancy
prescreen) and in seed-equivalent mode (no memoization, full register
ladder, plan-family caches disabled).  Both runs must land on the
byte-identical schedule and TFLOPS; the engine must at least halve the
``simulate()`` call count.  Results land in ``BENCH_evaluator.json``.
"""

import json
import os
import time

import pytest

from repro.gpu.simulator import reset_simulate_calls
from repro.pipeline import optimize
from repro.tuning import PlanEvaluator, evaluation_caches_disabled

from _cache import fmt, ir_of, print_table

KERNELS = ("7pt-smoother", "addsgd4")
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_evaluator.json")

_results = {}


def _timed_optimize(ir, evaluator=None):
    reset_simulate_calls()
    start = time.perf_counter()
    outcome = optimize(ir, top_k=2, evaluator=evaluator)
    wall = time.perf_counter() - start
    return outcome, wall, reset_simulate_calls()


@pytest.mark.parametrize("name", KERNELS)
def test_evaluator_speedup(name):
    ir = ir_of(name)

    fast, fast_wall, fast_calls = _timed_optimize(ir)
    with evaluation_caches_disabled():
        seed, seed_wall, seed_calls = _timed_optimize(
            ir, evaluator=PlanEvaluator.seed_mode()
        )

    # Determinism: the engine changes cost, never results.
    assert fast.schedule == seed.schedule
    assert fast.tflops == seed.tflops
    assert fast.variant == seed.variant
    # Priced-vs-simulated split: ``priced`` counts logical model
    # evaluations (vectorized lanes and scalar calls alike);
    # ``fast_calls`` only the scalar ``simulate()`` residue, which the
    # family backend can drive all the way to zero.
    stats = fast.eval_stats
    priced = stats.simulations
    assert priced > 0
    # The global simulate() counter also sees the pipeline's own
    # post-tune classification calls, so it bounds rather than equals
    # the engine's scalar residue (priced minus vectorized lanes).
    assert stats.vectorized > 0
    assert stats.vectorized <= priced
    assert fast_calls <= priced
    # Acceptance: >= 2x reduction in logical model evaluations.
    assert seed_calls >= 2 * priced

    # Every prescreen rejection must carry a lint rule code: the
    # engine's occupancy screen is routed through repro.lint, so the
    # two counters track each other exactly.
    assert stats.lint_rejections == stats.screened

    _results[name] = {
        "engine": {
            "wall_s": round(fast_wall, 4),
            "priced_candidates": priced,
            "simulate_calls": fast_calls,
            "vectorized": stats.vectorized,
            "prescreen_rejections": stats.screened,
            "lint_rejections": stats.lint_rejections,
        },
        "seed_mode": {
            "wall_s": round(seed_wall, 4),
            "simulate_calls": seed_calls,
        },
        "price_reduction": round(seed_calls / priced, 2),
        "call_reduction": (
            round(seed_calls / fast_calls, 2) if fast_calls else None
        ),
        "wall_speedup": round(seed_wall / fast_wall, 2),
        "tflops": fast.tflops,
        "identical_schedule": True,
    }

    print_table(
        f"evaluation engine vs seed path: {name}",
        ["quantity", "engine", "seed mode"],
        [
            ["priced candidates", priced, seed_calls],
            ["simulate() calls", fast_calls, seed_calls],
            ["vectorized lanes", stats.vectorized, 0],
            ["wall-clock (s)", fmt(fast_wall), fmt(seed_wall)],
            ["TFLOPS", fmt(fast.tflops), fmt(seed.tflops)],
            [
                "reduction / speedup",
                f"{seed_calls / priced:.2f}x prices",
                f"{seed_wall / fast_wall:.2f}x wall",
            ],
        ],
    )


def test_write_bench_json():
    # Runs after the parametrized cases (pytest preserves file order).
    from repro.resilience import atomic_write_json

    assert set(_results) == set(KERNELS)
    atomic_write_json(OUT_PATH, _results, indent=2, sort_keys=True)
