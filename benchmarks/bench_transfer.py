"""Transfer-tuning search-cost reduction: warm V100 from P100 winners.

For each iterative stencil: deep-tune on the P100 with a checkpoint
journal (the "source" run), then deep-tune on the V100 twice — cold
(full hierarchical sweep) and warm-started from the P100 journal via
``repro.tuning.transfer``.  The warm search must land on the
byte-identical winner at every fusion degree while pricing at least
25% fewer candidates.  Results land in ``BENCH_transfer.json``.
"""

import os
import tempfile
import time

import pytest

from repro.gpu.device import P100, V100
from repro.resilience.checkpoint import TuningJournal
from repro.tuning import (
    deep_tune,
    journaled_winners,
    plan_fingerprint,
    transfer_deep_tune,
)
from repro.tuning.transfer import DEFAULT_NEIGHBORHOOD, DEFAULT_SEED_LIMIT

from _cache import fmt, ir_of, print_table

KERNELS = ("7pt-smoother", "27pt-smoother", "helmholtz")
TOP_K = 2
#: Acceptance floor on the priced-candidate reduction (ISSUE 7).
MIN_REDUCTION = 0.25
OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_transfer.json")

_results = {}


def _stamp(result):
    """Deterministic summary of a deep-tuning sweep."""
    best = max(result.entries, key=lambda e: e.tflops)
    return {
        "degrees": [e.time_tile for e in result.entries],
        "winners": [
            plan_fingerprint(e.measurement.plan) for e in result.entries
        ],
        "best_degree": best.time_tile,
        "best_fingerprint": plan_fingerprint(best.measurement.plan),
        "best_tflops": best.tflops,
        "evaluations": result.evaluations,
        "priced_candidates": result.eval_stats.simulations,
    }


@pytest.mark.parametrize("name", KERNELS)
def test_transfer_search_cost(name, tmp_path):
    ir = ir_of(name)
    journal_path = os.path.join(str(tmp_path), "p100.jsonl")

    with TuningJournal(journal_path, device=P100.name) as journal:
        source = deep_tune(ir, device=P100, top_k=TOP_K, journal=journal)
    seeds = journaled_winners(journal_path, ir)

    start = time.perf_counter()
    cold = deep_tune(ir, device=V100, top_k=TOP_K)
    cold_wall = time.perf_counter() - start

    start = time.perf_counter()
    warm = transfer_deep_tune(ir, journal_path, device=V100, top_k=TOP_K)
    warm_wall = time.perf_counter() - start

    cold_sum, warm_sum = _stamp(cold), _stamp(warm)

    # Fidelity: the warm search is a shortcut, not an approximation —
    # every fusion degree must reproduce the cold winner exactly.
    assert warm_sum["degrees"] == cold_sum["degrees"]
    assert warm_sum["winners"] == cold_sum["winners"]
    assert warm_sum["best_fingerprint"] == cold_sum["best_fingerprint"]
    assert warm_sum["best_tflops"] == cold_sum["best_tflops"]

    # Acceptance: >= 25% fewer priced candidates (and submissions).
    reduction = 1.0 - warm_sum["priced_candidates"] / cold_sum[
        "priced_candidates"
    ]
    assert reduction >= MIN_REDUCTION
    assert warm_sum["evaluations"] < cold_sum["evaluations"]

    # The seeds really came from the foreign device's journal.
    assert seeds and all(s.source_device == P100.name for s in seeds)

    _results[name] = {
        "source_device": P100.name,
        "target_device": V100.name,
        "seeds": len(seeds),
        "neighborhood": DEFAULT_NEIGHBORHOOD,
        "seed_limit": DEFAULT_SEED_LIMIT,
        "source": {
            "evaluations": source.evaluations,
            "priced_candidates": source.eval_stats.simulations,
        },
        "cold": {
            "evaluations": cold_sum["evaluations"],
            "priced_candidates": cold_sum["priced_candidates"],
            "wall_s": round(cold_wall, 4),
        },
        "warm": {
            "evaluations": warm_sum["evaluations"],
            "priced_candidates": warm_sum["priced_candidates"],
            "wall_s": round(warm_wall, 4),
        },
        "priced_reduction": round(reduction, 4),
        "best_degree": cold_sum["best_degree"],
        "best_tflops": cold_sum["best_tflops"],
        "identical_winners": True,
    }

    print_table(
        f"transfer tuning P100 -> V100: {name}",
        ["quantity", "cold V100", "warm from P100"],
        [
            ["priced candidates", cold_sum["priced_candidates"],
             warm_sum["priced_candidates"]],
            ["candidate submissions", cold_sum["evaluations"],
             warm_sum["evaluations"]],
            ["wall-clock (s)", fmt(cold_wall), fmt(warm_wall)],
            ["best TFLOPS", fmt(cold_sum["best_tflops"]),
             fmt(warm_sum["best_tflops"])],
            ["priced reduction", "-", f"{100 * reduction:.1f}%"],
        ],
    )


def test_write_bench_json():
    # Runs after the parametrized cases (pytest preserves file order).
    from repro.resilience import atomic_write_json

    assert set(_results) == set(KERNELS)
    atomic_write_json(OUT_PATH, _results, indent=2, sort_keys=True)
