"""§V (extension) — hierarchical tuning vs budget-matched random search.

The paper reports OpenTuner needing >24 h where hierarchical tuning took
<5 h.  Here both tuners get the *same evaluation budget* on the same
simulated device: the hierarchical tuner spends its budget inside the
pruned, register-escalated space; the random searcher samples the raw
cross-product (and mostly draws infeasible or spilling configurations).
"""

import pytest

from repro.codegen.resources import auto_assign, seed_plan_from_pragma
from repro.gpu import P100
from repro.tuning.hierarchical import HierarchicalTuner
from repro.tuning.random_search import random_search

from _cache import fmt, ir_of, print_table


@pytest.mark.parametrize("name", ["7pt-smoother", "rhs4center"])
def test_random_vs_hierarchical(benchmark, name):
    ir = ir_of(name)
    instance = ir.kernels[0]
    seed = auto_assign(ir, seed_plan_from_pragma(ir, instance)).plan

    def run():
        tuner = HierarchicalTuner(ir, device=P100, use_register_opts=True)
        hierarchical = tuner.tune(seed)
        random_result = random_search(
            ir, instance.name, budget=tuner.evaluations, device=P100, seed=7
        )
        return tuner.evaluations, hierarchical, random_result

    evals, hierarchical, random_result = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )

    random_tflops = (
        random_result.best.tflops if random_result.best is not None else 0.0
    )
    print_table(
        f"§V extension: {name}, equal budget ({evals} evaluations)",
        ["tuner", "best TFLOPS", "wasted samples"],
        [
            ["hierarchical (pruned, staged)", fmt(hierarchical.best.tflops),
             0],
            ["random over raw space", fmt(random_tflops),
             random_result.infeasible],
        ],
    )

    # The pruned, profile-guided search wins under an equal budget, and
    # the raw space wastes a large share of its budget on configurations
    # that cannot even launch.
    assert hierarchical.best.tflops > random_tflops
    assert random_result.infeasible > random_result.evaluations * 0.3
