"""Search-cost regression gate: current run vs the committed baseline.

Runs the ``repro bench`` suite (``repro.suite.bench``) in-process,
refreshes ``BENCH_search.json`` with the measured profile, and asserts
the gated metrics (evaluator request count, simulation count, best
GFLOPS, winning variant) stayed within tolerance of the committed
baseline.  The counts are deterministic functions of the search
algorithm, so a failure here means the search itself changed shape —
not that the machine was slow.

Wall-clock gating is opt-in: set ``REPRO_BENCH_GATE_WALL`` to a relative
tolerance (e.g. ``1.0`` for "no worse than 2x the baseline") to fail
the run when ``wall_s`` regresses past it.  CI enables this with a
generous threshold — it exists to catch a vectorized path silently
falling back to scalar, not to police minor scheduler noise.

A second pass re-runs the suite with family pricing disabled and writes
``BENCH_compare.json``: the scalar-vs-vectorized before/after artifact,
reporting both the end-to-end and the pricing-only (engine-attributed
busy time) speedup, gated on byte-identical winners.

CI runs this as a *non-blocking* job (see ``.github/workflows/ci.yml``);
locally: ``PYTHONPATH=src python -m pytest benchmarks/bench_regression.py``.
"""

import json
import os

from repro.suite.bench import compare_bench, format_bench, run_bench

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_search.json"
)
COMPARE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_compare.json"
)
TOLERANCE = 0.15

_results = {}


def _wall_tolerance():
    raw = os.environ.get("REPRO_BENCH_GATE_WALL", "").strip()
    return float(raw) if raw else None


def test_search_bench():
    results = run_bench()
    _results.update(results)

    problems = []
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = compare_bench(
            results, baseline,
            tolerance=TOLERANCE,
            wall_tolerance=_wall_tolerance(),
        )
    print(format_bench(results, problems))
    # Prescreen-vs-price-vs-simulate split: every screened candidate
    # must carry a lint rule code; every survivor gets exactly one
    # logical price; the scalar simulate() calls are the residue the
    # vectorized backend did not cover.
    for name, row in results["benchmarks"].items():
        print(
            f"{name}: {row['lint_rejections']} lint-rejected, "
            f"{row['priced_candidates']} priced "
            f"({row['vectorized']} vectorized, "
            f"{row['simulate_calls']} scalar simulate calls)"
        )
        assert row["lint_rejections"] == row["screened"]
        assert row["priced_candidates"] == row["simulations"] - row["screened"]
        assert row["simulate_calls"] <= row["priced_candidates"]
    assert not problems, "; ".join(problems)


def test_vectorized_comparison():
    # Before/after throughput artifact: the same suite with family
    # pricing off.  The winners must be byte-identical — vectorization
    # is a cost lever, never a result lever.
    assert _results, "bench did not run"
    scalar = run_bench(vectorize=False)
    comparison = {"schema": 1, "benchmarks": {}}
    for name, vec_row in _results["benchmarks"].items():
        scal_row = scalar["benchmarks"][name]
        for field in ("best_gflops", "variant", "requests", "simulations",
                      "screened", "rungs_skipped", "evaluations"):
            assert scal_row[field] == vec_row[field], (
                f"{name}: {field} differs between scalar and vectorized "
                f"engines ({scal_row[field]} vs {vec_row[field]})"
            )
        assert scal_row["vectorized"] == 0
        comparison["benchmarks"][name] = {
            "scalar_wall_s": scal_row["wall_s"],
            "vectorized_wall_s": vec_row["wall_s"],
            "end_to_end_speedup": round(
                scal_row["wall_s"] / vec_row["wall_s"], 2
            ) if vec_row["wall_s"] else None,
            "scalar_engine_wall_s": scal_row["engine_wall_s"],
            "vectorized_engine_wall_s": vec_row["engine_wall_s"],
            "pricing_speedup": round(
                scal_row["engine_wall_s"] / vec_row["engine_wall_s"], 2
            ) if vec_row["engine_wall_s"] else None,
            "vectorized_lanes": vec_row["vectorized"],
            "identical_winner": True,
        }
        row = comparison["benchmarks"][name]
        print(
            f"{name}: end-to-end {row['end_to_end_speedup']}x "
            f"(wall {scal_row['wall_s']}s -> {vec_row['wall_s']}s), "
            f"pricing-only {row['pricing_speedup']}x "
            f"(engine {scal_row['engine_wall_s']}s -> "
            f"{vec_row['engine_wall_s']}s)"
        )
    from repro.resilience import atomic_write_json

    atomic_write_json(COMPARE_PATH, comparison, indent=2, sort_keys=True)


def test_write_bench_json():
    # Runs after the bench case (pytest preserves file order); refreshes
    # the baseline artifact CI uploads.
    from repro.resilience import atomic_write_json

    assert _results, "bench did not run"
    atomic_write_json(BASELINE_PATH, _results, indent=2, sort_keys=True)
