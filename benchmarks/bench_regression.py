"""Search-cost regression gate: current run vs the committed baseline.

Runs the ``repro bench`` suite (``repro.suite.bench``) in-process,
refreshes ``BENCH_search.json`` with the measured profile, and asserts
the gated metrics (evaluator request count, simulation count, best
GFLOPS, winning variant) stayed within tolerance of the committed
baseline.  The counts are deterministic functions of the search
algorithm, so a failure here means the search itself changed shape —
not that the machine was slow.

CI runs this as a *non-blocking* job (see ``.github/workflows/ci.yml``);
locally: ``PYTHONPATH=src python -m pytest benchmarks/bench_regression.py``.
"""

import json
import os

from repro.suite.bench import compare_bench, format_bench, run_bench

BASELINE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_search.json"
)
TOLERANCE = 0.15

_results = {}


def test_search_bench():
    results = run_bench()
    _results.update(results)

    problems = []
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        problems = compare_bench(results, baseline, tolerance=TOLERANCE)
    print(format_bench(results, problems))
    # Prescreen-vs-simulate split: every screened candidate must carry
    # a lint rule code, and the full-model call count is what remains.
    for name, row in results["benchmarks"].items():
        print(
            f"{name}: {row['lint_rejections']} lint-rejected, "
            f"{row['simulate_calls']} simulated"
        )
        assert row["lint_rejections"] == row["screened"]
        assert row["simulate_calls"] == row["simulations"] - row["screened"]
    assert not problems, "; ".join(problems)


def test_write_bench_json():
    # Runs after the bench case (pytest preserves file order); refreshes
    # the baseline artifact CI uploads.
    from repro.resilience import atomic_write_json

    assert _results, "bench did not run"
    atomic_write_json(BASELINE_PATH, _results, indent=2, sort_keys=True)
