"""Table I — characteristics of the 3-D benchmarks.

Regenerates domain, time tile T, stencil order k, per-point FLOPs and
the full-rank I/O array count for all 11 benchmarks, and checks each
against the paper's row.
"""

import pytest

from repro.ir import characteristics
from repro.suite import BENCHMARKS, get

from _cache import ir_of, print_table


def _row(name):
    spec = get(name)
    ir = ir_of(name)
    row = characteristics(ir)
    touched = {n for k in ir.kernels for n in k.io_arrays()}
    full_rank = sum(
        1 for a in ir.arrays if a.ndim == ir.ndim and a.name in touched
    )
    return spec, row, full_rank


def test_table1(benchmark):
    names = list(BENCHMARKS)

    def regenerate():
        return [_row(name) for name in names]

    rows = benchmark(regenerate)

    printable = []
    for (spec, row, full_rank), name in zip(rows, names):
        domain = "x".join(str(d) for d in row.domain)
        printable.append(
            [
                name,
                domain,
                f"{row.time_iterations}/{spec.time_iterations}",
                f"{row.order}/{spec.order}",
                f"{row.flops_per_point}/{spec.flops_per_point}",
                f"{full_rank}/{spec.io_arrays}",
            ]
        )
    print_table(
        "Table I: benchmark characteristics (measured/paper)",
        ["benchmark", "domain", "T", "k", "# Flops", "# IO arrays"],
        printable,
    )

    for spec, row, full_rank in rows:
        assert row.time_iterations == spec.time_iterations
        assert row.order == spec.order
        assert row.flops_per_point == spec.flops_per_point
        assert full_rank == spec.io_arrays
