"""Table II — OI at each memory level per fusion degree of 7pt-smoother.

The paper's trend: with increasing fusion degree, OI_dram and OI_tex
climb toward the ridge points (the computation stops being bandwidth-
bound at DRAM/texture) while OI_shm stays flat — the bound migrates
onto shared memory.
"""

import pytest

from repro.codegen import KernelPlan
from repro.gpu import P100, simulate

from _cache import deep, fmt, ir_of, print_table

#: Table II of the paper.
PAPER = {
    "global": {"dram": 0.97, "tex": 0.29, "shm": None},
    1: {"dram": 0.97, "tex": 0.98, "shm": 0.22},
    2: {"dram": 2.01, "tex": 3.06, "shm": 0.25},
    3: {"dram": 2.84, "tex": 4.51, "shm": 0.24},
    4: {"dram": 4.26, "tex": 5.56, "shm": 0.22},
    5: {"dram": 5.90, "tex": 6.42, "shm": 0.21},
}


def _global_plan(ir):
    return KernelPlan(
        kernel_names=(ir.kernels[0].name,),
        block=(4, 8, 16),
        streaming="none",
    )


def test_table2_oi_per_fusion_degree(benchmark):
    ir = ir_of("7pt-smoother")
    result = benchmark.pedantic(
        lambda: deep("7pt-smoother"), rounds=1, iterations=1, warmup_rounds=0
    )

    versions = [("global", simulate(ir, _global_plan(ir), P100))]
    for entry in result.entries:
        versions.append(
            (entry.time_tile, simulate(ir, entry.measurement.plan, P100))
        )

    rows = []
    measured = {}
    for label, sim in versions:
        counters = sim.counters
        measured[label] = {
            level: counters.oi(level) for level in ("dram", "tex", "shm")
        }
        paper = PAPER.get(label, {})
        rows.append(
            [
                label if label == "global" else f"{label} x 1",
                fmt(measured[label]["dram"], 2),
                fmt(paper.get("dram"), 2),
                fmt(measured[label]["tex"], 2),
                fmt(paper.get("tex"), 2),
                fmt(measured[label]["shm"], 2)
                if counters.shm_bytes
                else "-",
                fmt(paper.get("shm"), 2),
            ]
        )
    print_table(
        "Table II: OI per fusion degree of 7pt-smoother (measured | paper)",
        ["version", "OIdram", "paper", "OItex", "paper", "OIshm", "paper"],
        rows,
    )

    # Shape assertions: OI_dram and OI_tex rise monotonically with the
    # fusion degree; OI_shm stays within a flat band.
    degrees = [lab for lab, _ in versions if lab != "global"]
    dram = [measured[d]["dram"] for d in degrees]
    tex = [measured[d]["tex"] for d in degrees]
    shm = [measured[d]["shm"] for d in degrees]
    assert dram == sorted(dram)
    assert tex == sorted(tex)
    assert max(shm) <= 2.5 * min(shm)
    # The global version has no shared-memory traffic (paper: '-').
    assert versions[0][1].counters.shm_bytes == 0
