"""Ablations of the DESIGN.md-called-out optimization choices.

Each ablation isolates one ARTEMIS optimization on the benchmark the
paper's §VIII-G singles out for it:

* retiming            — "the key to achieving high performance in
                         27pt-smoother";
* load/compute adjust — "significant performance improvement for the
                         shared memory version of hypterm";
* computation folding — "beneficial for addsgd6";
* prefetching         — removes the streaming loop's load bubble;
* streaming modes     — serial streaming reduces shared-memory
                         footprint; concurrent streaming restores
                         block-level parallelism.
"""

import pytest

from repro.codegen import KernelPlan
from repro.codegen.resources import auto_assign, seed_plan_from_pragma
from repro.gpu import P100, simulate
from repro.gpu.simulator import PlanInfeasible
from repro.ir import find_fold_groups

from _cache import fmt, ir_of, print_table


def _plan(ir, **kw):
    instance = ir.kernels[0]
    base = auto_assign(ir, seed_plan_from_pragma(ir, instance)).plan
    return base.replace(**kw)


def test_ablation_retiming_27pt(benchmark):
    ir = ir_of("27pt-smoother")
    small = _plan(ir, block=(16, 16), time_tile=3)
    large = _plan(ir, block=(32, 32), time_tile=3)

    def run():
        plain = simulate(ir, small, P100)
        retimed = simulate(ir, small.replace(retime=True), P100)
        retimed_large = simulate(ir, large.replace(retime=True), P100)
        return plain, retimed, retimed_large

    plain, retimed, retimed_large = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    print_table(
        "Ablation: retiming on 27pt-smoother (t=3)",
        ["version", "TFLOPS", "shmem/block"],
        [
            ["plain 16x16", fmt(plain.tflops), plain.counters.shmem_per_block],
            ["retimed 16x16", fmt(retimed.tflops),
             retimed.counters.shmem_per_block],
            ["retimed 32x32", fmt(retimed_large.tflops),
             retimed_large.counters.shmem_per_block],
        ],
    )
    # Retiming shrinks the shared footprint and wins at the same block;
    # it also *enables* the 32x32 block the plain version cannot fit.
    assert retimed.tflops > 1.3 * plain.tflops
    assert retimed.counters.shmem_per_block < plain.counters.shmem_per_block
    with pytest.raises(PlanInfeasible):
        simulate(ir, large, P100)
    assert retimed_large.tflops > retimed.tflops


def test_ablation_load_compute_adjustment_hypterm(benchmark):
    # hypterm is register-hungry: the enlarged input/mixed blocks only
    # fit at a modest base block size.
    ir = ir_of("hypterm")
    plan = _plan(ir, block=(8, 16))

    def run():
        out = {}
        for perspective in ("output", "input", "mixed"):
            try:
                out[perspective] = simulate(
                    ir, plan.replace(perspective=perspective), P100
                )
            except PlanInfeasible:
                out[perspective] = None
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print_table(
        "Ablation: thread-block perspective on hypterm (shared-memory)",
        ["perspective", "TFLOPS", "threads/block", "tex B/pt"],
        [
            [
                p,
                fmt(sim.tflops) if sim else "infeasible",
                sim.counters.threads_per_block if sim else "-",
                fmt(sim.counters.tex_bytes / 320**3, 1) if sim else "-",
            ]
            for p, sim in results.items()
        ],
    )
    # Mixed removes the output perspective's uncoalesced halo loads
    # without the input perspective's idle warps: the texture-path cost
    # drops.  (Whether that wins end-to-end depends on what binds; the
    # autotuner's stage 2 makes that call per kernel.)
    output = results["output"]
    mixed = results["mixed"]
    assert output is not None and mixed is not None
    assert mixed.counters.tex_bytes < output.counters.tex_bytes
    assert mixed.timing.tex_s < output.timing.tex_s


def test_ablation_folding_addsgd6(benchmark):
    from repro.tuning.hierarchical import with_fold_groups

    ir = ir_of("addsgd6")
    groups = find_fold_groups(ir.kernels[0])
    assert groups, "addsgd6 must expose (u - um) fold groups"
    plan = _plan(ir, block=(16, 16))

    def run():
        return simulate(ir, plan, P100), simulate(
            ir, with_fold_groups(plan, groups), P100
        )

    plain, folded = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    print_table(
        "Ablation: storage/computation folding on addsgd6",
        ["version", "TFLOPS", "tex B/pt", "regs"],
        [
            ["plain", fmt(plain.tflops),
             fmt(plain.counters.tex_bytes / 320**3, 1),
             plain.counters.regs_per_thread],
            ["folded", fmt(folded.tflops),
             fmt(folded.counters.tex_bytes / 320**3, 1),
             folded.counters.regs_per_thread],
        ],
    )
    assert folded.tflops > plain.tflops * 1.1
    assert folded.counters.tex_bytes < plain.counters.tex_bytes


def test_ablation_prefetch(benchmark):
    ir = ir_of("7pt-smoother")
    plan = _plan(ir, block=(32, 32), time_tile=3)

    def run():
        return simulate(ir, plan, P100), simulate(
            ir, plan.replace(prefetch=True), P100
        )

    plain, prefetched = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    print_table(
        "Ablation: prefetching on 7pt-smoother (t=3)",
        ["version", "TFLOPS", "bubble ms"],
        [
            ["no prefetch", fmt(plain.tflops),
             fmt(plain.timing.bubble_s * 1e3, 2)],
            ["prefetch", fmt(prefetched.tflops),
             fmt(prefetched.timing.bubble_s * 1e3, 2)],
        ],
    )
    assert prefetched.timing.bubble_s == 0.0
    assert plain.timing.bubble_s > 0.0
    assert prefetched.tflops > plain.tflops


def test_ablation_streaming_modes(benchmark):
    """Serial streaming shrinks the shared footprint; concurrent
    streaming multiplies block-level parallelism (§III-B1)."""
    ir = ir_of("7pt-smoother")
    base = _plan(ir, block=(16, 16))

    def run():
        serial = simulate(ir, base, P100)
        conc = simulate(
            ir,
            base.replace(streaming="concurrent", concurrent_chunks=8),
            P100,
        )
        tiled = simulate(
            ir,
            base.replace(streaming="none", block=(4, 8, 16), placements=()),
            P100,
        )
        return serial, conc, tiled

    serial, conc, tiled = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    print_table(
        "Ablation: streaming modes on 7pt-smoother",
        ["version", "TFLOPS", "blocks"],
        [
            ["serial streaming + shm", fmt(serial.tflops),
             serial.counters.blocks],
            ["concurrent streaming + shm", fmt(conc.tflops),
             conc.counters.blocks],
            ["3-D tiled, global only", fmt(tiled.tflops),
             tiled.counters.blocks],
        ],
    )
    assert conc.counters.blocks == 8 * serial.counters.blocks
    # Buffered streaming beats the unbuffered tiled version.
    assert serial.tflops > tiled.tflops
