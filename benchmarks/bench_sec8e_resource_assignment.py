"""§VIII-E — domain-expert guided resource assignment for addsgd4.

The benchmark's DSL carries ``#assign gmem (strx, stry, dcx, dcy, rho)``
— the 1-D arrays and the density stay in global memory, as the paper's
experts specify for the SW4lite kernels.  Removing the constraint lets
the automatic assignment buffer everything, shrinking the feasible block
and losing performance.

Paper: 0.65 TFLOPS without explicit assignment, 1.05 TFLOPS with it.
"""

import pytest

from repro.codegen.resources import auto_assign, seed_plan_from_pragma
from repro.codegen.plan import SHMEM
from repro.gpu import P100, simulate
from repro.tuning.hierarchical import HierarchicalTuner

from _cache import fmt, ir_of, print_table

PAPER = {"with #assign": 1.05, "without": 0.65}


def _tuned_tflops(ir, placements_override=None, tune_blocks=True):
    total_time, useful = 0.0, 0.0
    for instance in ir.kernels:
        if placements_override is not None:
            instance = instance.replace(placements=placements_override)
        seed = auto_assign(ir, seed_plan_from_pragma(ir, instance)).plan
        if tune_blocks:
            tuner = HierarchicalTuner(ir, device=P100, top_k=2)
            result = tuner.tune(seed)
            plan = result.best_plan
        else:
            plan = seed
        sim = simulate(ir, plan, P100)
        total_time += sim.time_s
        useful += sim.counters.useful_flops
    return useful / total_time / 1e12


def test_sec8e_user_guided_assignment(benchmark):
    ir = ir_of("addsgd4")

    def run():
        guided = _tuned_tflops(ir)
        # Without guidance, a single-shot generator buffers *every*
        # input (3-D and 1-D alike) at its fixed default mapping — the
        # failure mode §II-B1 describes.  Its resource mapping and block
        # size are decided once, not co-tuned with the mapping.
        instance = ir.kernels[0]
        naive = tuple(
            (array, SHMEM)
            for array in instance.arrays_read()
            if array in ir.array_map
        )
        unguided = _tuned_tflops(
            ir, placements_override=naive, tune_blocks=False
        )
        return guided, unguided

    guided, unguided = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    print_table(
        "§VIII-E: addsgd4 resource assignment (measured | paper)",
        ["version", "TFLOPS", "paper"],
        [
            ["with #assign", fmt(guided), fmt(PAPER["with #assign"], 2)],
            ["without (buffer all)", fmt(unguided), fmt(PAPER["without"], 2)],
        ],
    )

    # Expert guidance wins by a wide margin (paper: 1.6x).
    assert guided > unguided * 1.2
