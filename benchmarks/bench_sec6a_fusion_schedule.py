"""§VI-A — the opt(T) fusion-schedule dynamic program.

Deep tuning records f(x) for x = 1..k once; the DP then produces a
near-optimal schedule for *any* iteration count T.  The paper's example
schedule notation for T = 13: (1x13), (2x6 (+) 1x1), (4x3 (+) 1x1), ...
"""

import pytest

from repro.tuning import fusion_schedule

from _cache import deep, fmt, print_table


def test_sec6a_schedules_for_arbitrary_T(benchmark):
    result = benchmark.pedantic(
        lambda: deep("7pt-smoother"), rounds=1, iterations=1, warmup_rounds=0
    )

    rows = []
    for T in (1, 2, 3, 5, 8, 13, 24, 64):
        schedule = fusion_schedule(result, T)
        naive_time = result.f(1) * T
        rows.append(
            [
                T,
                schedule.describe(),
                fmt(schedule.total_time_s * 1e3, 2) + " ms",
                fmt(naive_time * 1e3, 2) + " ms",
                fmt(naive_time / schedule.total_time_s, 2) + "x",
            ]
        )
    print_table(
        "§VI-A: deep-tuned fusion schedules for 7pt-smoother",
        ["T", "schedule", "opt(T)", "naive (1x T)", "speedup"],
        rows,
    )

    # Invariants: the DP never loses to the naive schedule, covers T
    # exactly, and uses at most k distinct candidates (paper: at most 4
    # fusion candidates tuned once, reused for any T).
    assert result.k <= 8
    for T in (1, 2, 3, 5, 8, 13, 24, 64):
        schedule = fusion_schedule(result, T)
        assert sum(schedule.tiles) == T
        assert schedule.total_time_s <= result.f(1) * T + 1e-12
        assert len(set(schedule.tiles)) <= result.k
