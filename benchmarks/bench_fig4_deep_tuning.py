"""Figure 4 — deep tuning for arbitrary time iterations.

Regenerates the TFLOPS-vs-time-tile curves for the 7pt and 27pt
smoothers.  The paper's shape: performance rises with the fusion degree
up to a cusp (the pink-circled tipping point, under 4 time steps for
all evaluated iterative stencils), then drops.
"""

import pytest

from _cache import deep, fmt, print_table

#: Paper values read from Figure 4 (approximate bar heights, TFLOPS).
PAPER_CURVES = {
    "7pt-smoother": {1: 0.28, 2: 0.45, 3: 0.58, 4: 0.70, 5: 0.62},
    "27pt-smoother": {1: 0.60, 2: 1.15, 3: 1.55, 4: 1.45, 5: 1.30},
}

PAPER_TIPPING = {"7pt-smoother": 4, "27pt-smoother": 3}


@pytest.mark.parametrize("name", ["7pt-smoother", "27pt-smoother"])
def test_fig4_deep_tuning(benchmark, name):
    result = benchmark.pedantic(
        lambda: deep(name), rounds=1, iterations=1, warmup_rounds=0
    )

    rows = []
    for entry in result.entries:
        paper = PAPER_CURVES[name].get(entry.time_tile)
        marker = " <-- tipping point" if (
            entry.time_tile == result.tipping_point
        ) else ""
        rows.append(
            [
                f"({entry.time_tile} x 1)",
                fmt(entry.tflops),
                fmt(paper, 2),
                entry.bound_level + marker,
            ]
        )
    print_table(
        f"Figure 4: deep tuning of {name}",
        ["version", "measured TFLOPS", "paper TFLOPS", "bound at"],
        rows,
    )

    # Shape assertions: performance rises to the cusp, then stops
    # improving; the tipping point is where the paper places it.
    tflops = [e.tflops for e in result.entries]
    peak = tflops.index(max(tflops))
    assert all(tflops[i] < tflops[i + 1] for i in range(peak))
    assert result.tipping_point == PAPER_TIPPING[name]
    assert result.tipping_point <= 4  # "under 4 time steps"
