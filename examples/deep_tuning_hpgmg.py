#!/usr/bin/env python
"""Deep tuning an HPGMG smoother for arbitrary time iterations (§VI-A).

The smoothing degree in multigrid varies per level and per cycle, so the
iteration count T is not fixed at compile time.  ARTEMIS deep-tunes the
fusion degree once — autotuning version (x by 1) for x = 1, 2, ... while
profiling says the kernel is still bandwidth-bound — and then answers
*any* T with the opt(T) dynamic program.

Run:  python examples/deep_tuning_hpgmg.py
"""

from repro.suite import load_ir
from repro.tuning import deep_tune, fusion_schedule, schedule_to_program_plan


def main() -> None:
    ir = load_ir("7pt-smoother")
    print("deep tuning the HPGMG 7pt smoother (512^3, P100 model)...")
    result = deep_tune(ir)

    print(f"\ntuned fusion degrees 1..{result.k} "
          f"({result.evaluations} simulator evaluations):")
    for entry in result.entries:
        marker = "  <-- tipping point" if (
            entry.time_tile == result.tipping_point
        ) else ""
        print(f"  ({entry.time_tile} x 1): {entry.tflops:6.3f} TFLOPS, "
              f"{entry.time_s * 1e3:7.2f} ms/launch, "
              f"bound at {entry.bound_level}{marker}")

    print("\nfusion schedules from the opt(T) dynamic program:")
    print(f"  {'T':>4s}  {'schedule':<22s} {'time':>10s} {'vs naive':>9s}")
    for iterations in (2, 4, 6, 12, 13, 20, 50, 100):
        schedule = fusion_schedule(result, iterations)
        naive = result.f(1) * iterations
        print(f"  {iterations:4d}  {schedule.describe():<22s} "
              f"{schedule.total_time_s * 1e3:8.2f}ms "
              f"{naive / schedule.total_time_s:8.2f}x")

    # Materialize one schedule as launchable plans.
    schedule = fusion_schedule(result, 13)
    program_plan = schedule_to_program_plan(result, schedule)
    print(f"\nschedule for T=13 -> {len(program_plan.plans)} distinct "
          f"launch configuration(s):")
    for plan, count in zip(program_plan.plans, program_plan.counts):
        print(f"  x{count}: {plan.describe()}")


if __name__ == "__main__":
    main()
