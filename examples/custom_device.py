#!/usr/bin/env python
"""Retargeting the model: P100 vs V100 vs a custom device.

The profiling component is parameterized by the device's theoretical
peaks ("the user is expected to provide these theoretical peak values",
§IV).  This example optimizes the same stencil for three devices and
shows how the ridge points move the bottleneck verdicts and the chosen
plans.

Run:  python examples/custom_device.py
"""

from repro import P100, V100, optimize, simulate
from repro.gpu.device import DeviceSpec
from repro.profiling import classify_result
from repro.suite import load_ir

# A hypothetical bandwidth-starved accelerator: same compute as P100,
# half the DRAM bandwidth — fusion should pay off longer.
SKINNY = DeviceSpec(
    name="SKINNY",
    sms=56,
    peak_gflops=4700.0,
    dram_bw_gbs=366.0,
    tex_bw_gbs=2000.0,
    shm_bw_gbs=9592.0,
    shared_mem_per_sm=64 * 1024,
    shared_mem_per_block=48 * 1024,
    registers_per_sm=65536,
    max_registers_per_thread=255,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=32,
)


def main() -> None:
    ir = load_ir("7pt-smoother")
    print(f"{'device':8s} {'ridge dram':>10s} {'TFLOPS':>8s} "
          f"{'tipping pt':>10s}  best launch")
    for device in (P100, V100, SKINNY):
        outcome = optimize(ir, device=device)
        tipping = (
            outcome.deep_tuning.tipping_point
            if outcome.deep_tuning
            else "-"
        )
        plan = outcome.schedule.plans[0]
        print(f"{device.name:8s} {device.ridge_dram:10.2f} "
              f"{outcome.tflops:8.3f} {tipping!s:>10s}  {plan.describe()}")

    print("\nbottleneck verdicts for the paper's tuned (4 x 1) version:")
    from repro.codegen import KernelPlan

    plan = KernelPlan(
        kernel_names=("smooth7.0",),
        block=(32, 32),
        time_tile=4,
        streaming="serial",
        stream_axis=0,
        placements=(("in", "shmem"),),
    )
    for device in (P100, V100, SKINNY):
        sim = simulate(ir, plan, device)
        verdict = classify_result(sim, device)
        print(f"  {device.name:8s}: bound at {verdict.bound_level:8s} "
              f"OI(dram)={sim.counters.oi('dram'):.2f} "
              f"vs ridge {device.ridge_dram:.2f}")

    print("\nThe bandwidth-starved device stays DRAM-bound at higher "
          "fusion degrees, so its tipping point moves right — the "
          "device model drives the optimization decisions, exactly as "
          "Section IV intends.")


if __name__ == "__main__":
    main()
