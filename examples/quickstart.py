#!/usr/bin/env python
"""Quickstart: compile, optimize and inspect a Jacobi stencil.

This walks the full ARTEMIS flow on Listing 1's 7-point Jacobi smoother:

1. parse the DSL specification;
2. generate the pragma-seeded baseline and look at its CUDA;
3. profile it and read the bottleneck verdict;
4. run the end-to-end optimizer (deep tuning, since it is iterative);
5. validate the chosen schedule bit-for-bit against the reference
   executor on a small grid.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    P100,
    build_ir,
    execute_program_plan,
    execute_reference,
    format_report,
    generate_baseline,
    optimize,
    parse,
    profile,
    simulate,
)
from repro.gpu.executor import allocate_inputs, default_scalars
from repro.profiling import classify_result

JACOBI = """
parameter L=512, M=512, N=512;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin in, h2inv, a, b;
iterate 12;
#pragma stream k block (32,16) unroll j=2
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1] + A[k][j][i-1]
    + A[k][j+1][i] + A[k][j-1][i] + A[k+1][j][i] + A[k-1][j][i]
    - A[k][j][i]*6.0);
}
jacobi (out, in, h2inv, a, b);
copyout out;
"""


def main() -> None:
    # -- 1. frontend ---------------------------------------------------------
    ir = build_ir(parse(JACOBI))
    print(f"parsed: {len(ir.kernels)} kernel(s), domain {ir.domain_shape()}, "
          f"T = {ir.time_iterations}")

    # -- 2. baseline code generation -----------------------------------------
    baseline = generate_baseline(ir)
    print(f"\nbaseline plan : {baseline.schedule.plans[0].describe()}")
    print(f"baseline perf : {baseline.tflops:.3f} TFLOPS (simulated P100)")
    print("\n--- generated CUDA (first 30 lines) ---")
    for line in baseline.source.splitlines()[:30]:
        print(line)

    # -- 3. profiling ---------------------------------------------------------
    report = profile(ir, baseline.schedule.plans[0], P100)
    verdict = classify_result(report.result, P100)
    print("\n--- profiling (simulated nvprof) ---")
    for level in ("dram", "tex", "shm"):
        entry = verdict.verdict(level)
        print(f"OI_{level:4s} = {entry.oi:6.2f}  (ridge {entry.ridge:.2f})"
              f"  -> {entry.verdict}")
    print(f"kernel is bound at: {verdict.bound_level}")

    # -- 4. end-to-end optimization -------------------------------------------
    outcome = optimize(ir)
    print()
    print(format_report(outcome))

    # -- 5. semantics check on a small grid ------------------------------------
    small_ir = build_ir(parse(JACOBI.replace("=512", "=24")))
    small = optimize(small_ir, top_k=1)
    inputs = allocate_inputs(small_ir)
    scalars = default_scalars(small_ir)
    reference = execute_reference(small_ir, inputs, scalars)
    scheduled = execute_program_plan(small_ir, small.schedule, inputs, scalars)
    exact = np.array_equal(reference["out"], scheduled["out"])
    print(f"\noptimized schedule matches the reference bit-for-bit: {exact}")
    assert exact


if __name__ == "__main__":
    main()
