#!/usr/bin/env python
"""Optimizing a multi-statement image pipeline (CDSC denoise).

denoise is a two-kernel DAG applied iteratively: an edge-stopping
coefficient kernel feeding a diffusion update.  ARTEMIS fuses the DAG,
deep-tunes the time dimension, and compares against launching the two
kernels separately — and the whole schedule is validated against the
reference executor on a small grid.

Run:  python examples/image_pipeline_denoise.py
"""

import numpy as np

from repro import build_ir, optimize, parse
from repro.gpu.executor import (
    allocate_inputs,
    default_scalars,
    execute_program_plan,
    execute_reference,
)
from repro.ir import intermediate_arrays, kernel_dag
from repro.pipeline import format_report
from repro.suite import get


def main() -> None:
    spec = get("denoise")
    ir = spec.ir()

    print("denoise: CDSC image-processing pipeline")
    graph = kernel_dag(ir)
    print(f"kernel DAG: {list(graph.edges(data='array'))}")
    print(f"intermediate arrays: {intermediate_arrays(ir)}")

    outcome = optimize(ir, top_k=2)
    print()
    print(format_report(outcome))

    # Validate on a small grid: the optimized schedule must equal the
    # reference (two kernels per step, 12 ping-ponged applications).
    small_ir = build_ir(parse(spec.dsl().replace("=512", "=20")))
    small = optimize(small_ir, top_k=1)
    inputs = allocate_inputs(small_ir)
    scalars = {k: v * 0.1 for k, v in default_scalars(small_ir).items()}
    reference = execute_reference(small_ir, inputs, scalars)
    if small.variant == "deep-tuned":
        # The deep-tuned schedule runs the *fused* kernel.
        scheduled = execute_program_plan(
            small.ir, small.schedule, inputs, scalars
        )
    else:
        scheduled = execute_program_plan(
            small_ir, small.schedule, inputs, scalars
        )
    exact = np.allclose(reference["uout"], scheduled["uout"], rtol=1e-12)
    print(f"\noptimized schedule matches the reference: {exact}")
    assert exact


if __name__ == "__main__":
    main()
