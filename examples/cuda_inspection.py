#!/usr/bin/env python
"""Inspecting the CUDA ARTEMIS emits for different plan choices.

The same stencil is rendered under four plans — plain streaming
(Listing 2's shape), prefetched, retimed, and 3-D tiled — to show how
each optimization changes the generated kernel structure.

Run:  python examples/cuda_inspection.py
"""

from repro import build_ir, emit_cuda, parse
from repro.codegen import KernelPlan

SRC = """
parameter L=256, M=256, N=256;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b;
copyin in, a, b;
stencil heat (B, A, a, b) {
  B[k][j][i] = a*A[k][j][i] + b*(A[k][j][i+1] + A[k][j][i-1]
    + A[k][j+1][i] + A[k][j-1][i] + A[k+1][j][i] + A[k-1][j][i]);
}
heat (out, in, a, b);
copyout out;
"""


def show(title: str, source: str, keep=28) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)
    lines = source.splitlines()
    for line in lines[:keep]:
        print(line)
    if len(lines) > keep:
        print(f"... ({len(lines) - keep} more lines)")
    print()


def main() -> None:
    ir = build_ir(parse(SRC))
    base = KernelPlan(
        kernel_names=("heat.0",),
        block=(32, 16),
        streaming="serial",
        stream_axis=0,
        placements=(("in", "shmem"),),
    )

    show("serial streaming + shared plane + register window (Listing 2)",
         emit_cuda(ir, base).source)
    show("with prefetching (§III-A4: load overlapped with compute)",
         emit_cuda(ir, base.replace(prefetch=True)).source)
    show("retimed (§III-B2: accumulator window, homogenized terms)",
         emit_cuda(ir, base.replace(retime=True)).source, keep=40)
    show("non-streaming 3-D tiling, global memory only",
         emit_cuda(
             ir,
             base.replace(streaming="none", block=(4, 8, 16),
                          placements=()),
         ).source)


if __name__ == "__main__":
    main()
