#!/usr/bin/env python
"""Kernel fission for the register-constrained SW4 kernels (§VI-B, §VIII-D).

The monolithic rhs4sgcurv kernel spills registers even at the device's
255-per-thread ceiling.  ARTEMIS generates fission candidates as DSL
specification files (the paper's Figure 3c); the trivial-fission split
into three spill-free sub-kernels roughly doubles performance.

Run:  python examples/sw4_fission.py
"""

from repro.codegen.resources import auto_assign, seed_plan_from_pragma
from repro.gpu import P100, simulate
from repro.suite import load_ir
from repro.tuning import generate_fission_candidates
from repro.tuning.hierarchical import HierarchicalTuner


def evaluate(candidate):
    """Tune every kernel of a candidate and report aggregate TFLOPS."""
    total_time, useful, spills = 0.0, 0.0, []
    for instance in candidate.ir.kernels:
        seed = auto_assign(
            candidate.ir, seed_plan_from_pragma(candidate.ir, instance)
        ).plan
        result = HierarchicalTuner(candidate.ir, device=P100, top_k=2).tune(
            seed
        )
        sim = simulate(candidate.ir, result.best_plan, P100)
        total_time += sim.time_s
        useful += sim.counters.useful_flops
        spills.append(sim.counters.spilled_registers)
    return useful / total_time / 1e12, spills


def main() -> None:
    ir = load_ir("rhs4sgcurv")
    print("rhs4sgcurv: order-2 curvilinear elastic-wave RHS, "
          f"{len(ir.kernels[0].statements)} statements, "
          "13 full-rank arrays\n")

    for candidate in generate_fission_candidates(ir):
        tflops, spills = evaluate(candidate)
        print(f"{candidate.label:18s}: {len(candidate.ir.kernels)} kernel(s), "
              f"{tflops:.3f} TFLOPS, spilled registers per kernel: {spills}")
        if candidate.label == "trivial-fission":
            print("\n--- generated DSL for the trivial-fission candidate "
                  "(Figure 3c), first 25 lines ---")
            for line in candidate.dsl.splitlines()[:25]:
                print(line)
            print("...\n")

    print("paper (P100): maxfuse 0.48 TFLOPS vs trivial-fission "
          "1.048 TFLOPS (2.18x)")


if __name__ == "__main__":
    main()
