"""Family evaluation: the vectorized backend threaded through the engine.

The vectorized pricing path is a pure throughput lever — every
observable of a tuning run must be invariant to it: the winner (bitwise),
the EvalStats accounting (requests, hits, misses, screened,
``lint_rejections == screened``), and the failure bookkeeping under
injected chaos.  The same invariance holds for the process-pool
executor.  These tests run the full hierarchical tuner through paired
engines and compare everything.
"""

import pytest

from repro.gpu.simulator import reset_simulate_calls, simulate_call_count
from repro.resilience import FaultInjector
from repro.resilience.errors import UsageError
from repro.tuning import HierarchicalTuner, PlanEvaluator, deep_tune
from repro.tuning.deeptuning import fusion_schedule
from repro.tuning.evaluator import EXECUTOR_MODES, Measurement


#: Stats fields that must not depend on how candidates were priced.
INVARIANT_FIELDS = (
    "requests",
    "hits",
    "misses",
    "infeasible",
    "rungs_skipped",
    "screened",
    "lint_rejections",
    "failures",
    "retries",
    "timeouts",
    "degraded",
)


def _tune(ir, base, **engine_kwargs):
    engine = PlanEvaluator(**engine_kwargs)
    tuner = HierarchicalTuner(ir, evaluator=engine)
    return tuner.tune(base), engine


def assert_invariant_stats(vec_engine, ref_engine):
    vec, ref = vec_engine.stats, ref_engine.stats
    for field in INVARIANT_FIELDS:
        assert getattr(vec, field) == getattr(ref, field), field
    # The engine's occupancy screen is routed through repro.lint, so
    # every prescreen rejection carries a rule code — on both paths.
    assert vec.lint_rejections == vec.screened
    assert ref.lint_rejections == ref.screened
    assert vec.simulations == ref.simulations


class TestVectorizedInvariance:
    def test_same_winner_and_stats(self, smoother_ir, base_plan):
        ref, ref_engine = _tune(smoother_ir, base_plan, vectorize=False)
        reset_simulate_calls()
        vec, vec_engine = _tune(smoother_ir, base_plan, vectorize=True)
        scalar_residue = reset_simulate_calls()

        assert vec.best.plan == ref.best.plan
        assert vec.best.time_s == ref.best.time_s
        assert vec.best.tflops == ref.best.tflops
        assert [m.plan for m in vec.trace] == [m.plan for m in ref.trace]
        assert vec.evaluations == ref.evaluations
        assert_invariant_stats(vec_engine, ref_engine)
        # The vector engine actually vectorized, and every lane it
        # priced that way is one scalar simulate() call that never ran.
        assert vec_engine.stats.vectorized > 0
        assert ref_engine.stats.vectorized == 0
        assert (
            scalar_residue
            == vec_engine.stats.simulations - vec_engine.stats.vectorized
        )

    def test_memoization_still_content_addressed(self, smoother_ir, base_plan):
        # A second identical tune through the same vectorized engine
        # must be served entirely from the memo cache: no new misses,
        # no new lanes, byte-identical winner.
        engine = PlanEvaluator(vectorize=True)
        first = HierarchicalTuner(smoother_ir, evaluator=engine).tune(base_plan)
        misses_after_first = engine.stats.misses
        vectorized_after_first = engine.stats.vectorized
        second = HierarchicalTuner(smoother_ir, evaluator=engine).tune(base_plan)
        assert second.best.plan == first.best.plan
        assert second.best.time_s == first.best.time_s
        assert engine.stats.misses == misses_after_first
        assert engine.stats.vectorized == vectorized_after_first
        assert engine.stats.hits > 0


class TestChaosInvariance:
    @pytest.mark.parametrize("on_error", ["skip", "degrade"])
    def test_fault_schedule_hits_both_paths_identically(
        self, smoother_ir, base_plan, on_error
    ):
        # Same fault seed through scalar and vectorized engines: faults
        # fire per *candidate* (the vector path still resolves each
        # lane through _evaluate), so the quarantine/degrade accounting
        # and the surviving winner must match exactly.
        def chaos(vectorize):
            injector = FaultInjector(rate=0.15, seed=11)
            result, engine = _tune(
                smoother_ir,
                base_plan,
                vectorize=vectorize,
                fault_injector=injector,
                on_error=on_error,
            )
            return result, engine, injector

        ref, ref_engine, ref_injector = chaos(vectorize=False)
        vec, vec_engine, vec_injector = chaos(vectorize=True)

        assert vec_injector.injected == ref_injector.injected
        assert vec_injector.injected > 0
        assert vec.best.plan == ref.best.plan
        assert vec.best.time_s == ref.best.time_s
        assert_invariant_stats(vec_engine, ref_engine)
        if on_error == "skip":
            assert vec_engine.stats.failures > 0
        else:
            assert vec_engine.stats.degraded > 0
        assert vec_engine.stats.vectorized > 0


class TestProcessExecutor:
    def test_modes(self):
        assert EXECUTOR_MODES == ("thread", "process")
        with pytest.raises(UsageError, match="executor"):
            PlanEvaluator(executor="fiber")

    def test_process_pool_matches_thread_pool(self, smoother_ir, base_plan):
        ref, ref_engine = _tune(smoother_ir, base_plan, executor="thread")
        pool, pool_engine = _tune(
            smoother_ir, base_plan, executor="process", workers=2
        )
        assert pool.best.plan == ref.best.plan
        assert pool.best.time_s == ref.best.time_s
        assert pool.evaluations == ref.evaluations
        assert_invariant_stats(pool_engine, ref_engine)

    def test_process_pool_refuses_fault_injector(self):
        with pytest.raises(UsageError, match="FaultInjector"):
            PlanEvaluator(
                executor="process", fault_injector=FaultInjector(rate=0.5)
            )


class TestPhaseAttribution:
    def test_tuner_stages_are_phase_labelled(self, smoother_ir, base_plan):
        engine = PlanEvaluator()
        HierarchicalTuner(smoother_ir, evaluator=engine).tune(base_plan)
        phases = engine.phase_stats
        assert "stage1" in phases and "stage2" in phases
        # Every request lands in exactly one phase (the tuner wraps all
        # its evaluation sites), so the per-phase split is a partition.
        assert (
            sum(ps.requests for ps in phases.values())
            == engine.stats.requests
        )
        for name, ps in phases.items():
            assert 0.0 <= ps.hit_rate <= 1.0, name
        report = engine.phase_dict()
        assert set(report) == set(phases)
        assert report["stage1"]["requests"] == phases["stage1"].requests

    def test_deep_tune_classify_phase_is_all_hits(self, smoother_ir):
        engine = PlanEvaluator()
        deep_tune(smoother_ir, evaluator=engine, max_degree=2)
        classify = engine.phase_stats["classify"]
        # The winner was just tuned, so classification is served from
        # the memo cache — the only cold-run hits, now attributable.
        assert classify.requests >= 1
        assert classify.hits == classify.requests
        assert classify.hit_rate == 1.0


class TestFusionScheduleDP:
    def _result(self, f_values, base_plan):
        from repro.tuning.deeptuning import DeepTuningEntry, DeepTuningResult

        entries = tuple(
            DeepTuningEntry(
                time_tile=x,
                measurement=Measurement(
                    plan=base_plan.replace(time_tile=x),
                    time_s=f,
                    tflops=1.0 / f,
                ),
                bandwidth_bound=True,
                bound_level="dram",
            )
            for x, f in enumerate(f_values, start=1)
        )
        return DeepTuningResult(entries=entries, evaluations=len(entries))

    def test_vector_dp_bitwise_matches_scalar(self, base_plan, monkeypatch):
        import random

        import repro.tuning.deeptuning as dt

        rng = random.Random(42)
        for _ in range(25):
            k = rng.randint(1, 6)
            f_values = [rng.uniform(0.5, 2.0) / x for x in range(1, k + 1)]
            result = self._result(f_values, base_plan)
            iterations = rng.randint(1, 200)
            monkeypatch.setattr(dt, "VECTOR_DP_MIN_OPS", 1)
            vec = fusion_schedule(result, iterations)
            monkeypatch.setattr(dt, "VECTOR_DP_MIN_OPS", 10**12)
            scalar = fusion_schedule(result, iterations)
            assert vec.tiles == scalar.tiles
            assert vec.total_time_s == scalar.total_time_s
            assert sum(vec.tiles) == iterations

    def test_zero_iterations(self, base_plan):
        result = self._result([1.0], base_plan)
        schedule = fusion_schedule(result, 0)
        assert schedule.tiles == () and schedule.total_time_s == 0.0
