"""Tests for deep tuning and the opt(T) fusion-schedule DP."""

import itertools

import numpy as np
import pytest

from repro.codegen import ProgramPlan
from repro.gpu.executor import (
    allocate_inputs,
    default_scalars,
    execute_program_plan,
    execute_reference,
)
from repro.dsl import parse
from repro.ir import build_ir
from repro.tuning import (
    DeepTuningResult,
    deep_tune,
    fusion_schedule,
    schedule_to_program_plan,
)
from repro.tuning.deeptuning import DeepTuningEntry
from repro.tuning.hierarchical import Measurement
from repro.codegen import KernelPlan


@pytest.fixture(scope="module")
def tuned(request):
    src = """
    parameter L=512, M=512, N=512;
    iterator k, j, i;
    double in[L,M,N], out[L,M,N], a;
    copyin in, a;
    iterate 12;
    #pragma stream k block (32,16)
    stencil s (B, A, a) {
      B[k][j][i] = a * (A[k][j][i+1] + A[k][j][i-1] + A[k][j+1][i]
        + A[k][j-1][i] + A[k+1][j][i] + A[k-1][j][i] + A[k][j][i]);
    }
    s (out, in, a);
    copyout out;
    """
    ir = build_ir(parse(src))
    return ir, deep_tune(ir, top_k=2)


class TestDeepTune:
    def test_explores_multiple_degrees(self, tuned):
        _ir, result = tuned
        assert result.k >= 3

    def test_performance_rises_then_falls(self, tuned):
        _ir, result = tuned
        tflops = [e.tflops for e in result.entries]
        peak = tflops.index(max(tflops))
        assert all(
            tflops[i] <= tflops[i + 1] for i in range(peak)
        )

    def test_tipping_point_under_paper_bound(self, tuned):
        # "The tipping point was under 4 time steps for all the evaluated
        # iterative stencils" (our order-1 smoother: <= 4).
        _ir, result = tuned
        assert 2 <= result.tipping_point <= 4

    def test_stops_when_not_bandwidth_bound(self, tuned):
        _ir, result = tuned
        for entry in result.entries[:-1]:
            assert entry.bandwidth_bound

    def test_requires_iterative(self):
        src = """
        parameter N=64;
        iterator k, j, i;
        double A[N,N,N], B[N,N,N];
        stencil s (B, A) { B[k][j][i] = A[k][j][i+1]; }
        s (B, A);
        """
        ir = build_ir(parse(src))
        with pytest.raises(ValueError):
            deep_tune(ir)


def _fake_result(times):
    entries = []
    for x, t in times.items():
        plan = KernelPlan(kernel_names=("s.0",), block=(8, 8),
                          streaming="serial", stream_axis=0, time_tile=x)
        entries.append(
            DeepTuningEntry(
                time_tile=x,
                measurement=Measurement(plan=plan, time_s=t, tflops=1.0),
                bandwidth_bound=True,
                bound_level="dram",
            )
        )
    return DeepTuningResult(entries=tuple(entries), evaluations=0)


class TestFusionScheduleDP:
    def test_trivial_schedule(self):
        result = _fake_result({1: 1.0})
        schedule = fusion_schedule(result, 5)
        assert schedule.tiles == (1, 1, 1, 1, 1)
        assert schedule.total_time_s == pytest.approx(5.0)

    def test_prefers_fused_when_cheaper(self):
        # f(1)=1.0, f(2)=1.2 (cheaper per step), f(3)=3.5 (worse).
        result = _fake_result({1: 1.0, 2: 1.2, 3: 3.5})
        schedule = fusion_schedule(result, 4)
        assert schedule.tiles == (2, 2)
        assert schedule.total_time_s == pytest.approx(2.4)

    def test_remainder_handled(self):
        result = _fake_result({1: 1.0, 2: 1.2})
        schedule = fusion_schedule(result, 5)
        assert sorted(schedule.tiles) == [1, 2, 2]

    @pytest.mark.parametrize("T", [1, 2, 3, 5, 7, 13, 24])
    def test_dp_matches_bruteforce(self, T):
        times = {1: 1.0, 2: 1.7, 3: 2.1, 4: 3.9}
        result = _fake_result(times)
        schedule = fusion_schedule(result, T)
        # Brute force over compositions of T with parts <= 4.
        best = float("inf")
        def compositions(total):
            if total == 0:
                yield ()
                return
            for part in range(1, min(4, total) + 1):
                for rest in compositions(total - part):
                    yield (part,) + rest
        for combo in compositions(T):
            cost = sum(times[p] for p in combo)
            best = min(best, cost)
        assert schedule.total_time_s == pytest.approx(best)

    def test_describe_uses_paper_notation(self):
        result = _fake_result({1: 1.0, 2: 1.2})
        schedule = fusion_schedule(result, 5)
        assert "2x2" in schedule.describe()
        assert "1x1" in schedule.describe()

    def test_zero_iterations(self):
        result = _fake_result({1: 1.0})
        schedule = fusion_schedule(result, 0)
        assert schedule.tiles == () and schedule.total_time_s == 0.0


class TestScheduleCorrectness:
    def test_deep_tuned_schedule_matches_reference(self):
        """End-to-end: the deep-tuned schedule computes the right values."""
        src = """
        parameter L=24, M=24, N=24;
        iterator k, j, i;
        double in[L,M,N], out[L,M,N], a;
        copyin in, a;
        iterate 7;
        #pragma stream k block (8,8)
        stencil s (B, A, a) {
          B[k][j][i] = a * (A[k][j][i+1] + A[k][j][i-1] + A[k+1][j][i]
            + A[k-1][j][i]);
        }
        s (out, in, a);
        copyout out;
        """
        ir = build_ir(parse(src))
        result = deep_tune(ir, max_degree=3, top_k=1)
        schedule = fusion_schedule(result, 7)
        program_plan = schedule_to_program_plan(result, schedule)
        assert program_plan.total_time_steps() == 7
        inputs = allocate_inputs(ir)
        scalars = default_scalars(ir)
        ref = execute_reference(ir, inputs, scalars, time_iterations=7)
        got = execute_program_plan(ir, program_plan, inputs, scalars)
        assert np.array_equal(ref["out"], got["out"])
