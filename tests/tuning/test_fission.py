"""Tests for kernel fusion and the three fission candidates (§VI-B)."""

import numpy as np
import pytest

from repro.dsl import parse
from repro.gpu.executor import (
    allocate_inputs,
    default_scalars,
    execute_reference,
)
from repro.ir import build_ir
from repro.tuning import (
    export_dsl,
    fuse_instances,
    generate_fission_candidates,
    maxfuse,
    recompute_fission,
    trivial_fission,
)


class TestFuseInstances:
    def test_fuses_statements(self, sw4_ir):
        fused = fuse_instances([sw4_ir.kernels[0], sw4_ir.kernels[0]], "ff")
        assert len(fused.statements) == 2 * len(sw4_ir.kernels[0].statements)

    def test_locals_uniquified(self, sw4_ir):
        fused = fuse_instances([sw4_ir.kernels[0], sw4_ir.kernels[0]], "ff")
        locals_ = [s.target for s in fused.statements if s.is_local]
        assert len(locals_) == len(set(locals_))
        assert "s0_mux1" in locals_ and "s1_mux1" in locals_

    def test_maxfuse_pipeline(self):
        src = """
        parameter N=32;
        iterator k, j, i;
        double a[N,N,N], b[N,N,N], c[N,N,N];
        stencil f (o, x) { o[k][j][i] = x[k][j][i+1]; }
        stencil g (o, x) { o[k][j][i] = 2.0 * x[k][j][i]; }
        f (b, a);
        g (c, b);
        """
        ir = build_ir(parse(src))
        fused_ir = maxfuse(ir)
        assert len(fused_ir.kernels) == 1
        assert fused_ir.kernels[0].arrays_written() == ("b", "c")


class TestTrivialFission:
    def test_one_kernel_per_output(self, sw4_ir):
        kernels = trivial_fission(sw4_ir, sw4_ir.kernels[0])
        assert len(kernels) == 3
        for kernel in kernels:
            assert len(kernel.arrays_written()) == 1

    def test_shared_temps_replicated(self, sw4_ir):
        """Figure 3b: mux1..muz2 are replicated in all three kernels."""
        kernels = trivial_fission(sw4_ir, sw4_ir.kernels[0])
        for kernel in kernels:
            locals_ = {s.target for s in kernel.statements if s.is_local}
            assert "mux1" in locals_ and "muz2" in locals_

    def test_private_temp_not_replicated(self, sw4_ir):
        kernels = trivial_fission(sw4_ir, sw4_ir.kernels[0])
        first = {s.target for s in kernels[0].statements if s.is_local}
        assert "r1" not in first and "r2" not in first

    def test_single_output_is_identity(self, smoother_ir):
        kernels = trivial_fission(smoother_ir, smoother_ir.kernels[0])
        assert kernels == (smoother_ir.kernels[0],)

    def test_fission_preserves_semantics(self, sw4_ir):
        """Split kernels compute the same values as the monolith."""
        ir = sw4_ir
        inputs = allocate_inputs(ir)
        scalars = default_scalars(ir)
        ref = execute_reference(ir, inputs, scalars)
        split = ir.replace(kernels=trivial_fission(ir, ir.kernels[0]))
        got = execute_reference(split, inputs, scalars)
        for out in ("uacc0", "uacc1", "uacc2"):
            assert np.array_equal(ref[out], got[out])


class TestRecomputeFission:
    def test_bound_respected(self, sw4_ir):
        kernels = recompute_fission(sw4_ir, sw4_ir.kernels[0])
        # Order-2 independent outputs: all fit within max(4, 2) -> no split.
        assert len(kernels) == 1

    def test_chained_outputs_split(self):
        src = """
        parameter N=64;
        iterator k, j, i;
        double a[N,N,N], b[N,N,N], c[N,N,N], d[N,N,N];
        stencil chain (b, c, d, a) {
          b[k][j][i] = a[k][j][i+3] + a[k][j][i-3];
          c[k][j][i] = b[k][j][i+3] + b[k][j][i-3];
          d[k][j][i] = c[k][j][i+3] + c[k][j][i-3];
        }
        chain (b, c, d, a);
        copyout d;
        """
        ir = build_ir(parse(src))
        kernels = recompute_fission(ir, ir.kernels[0])
        # Chained halos 3+3+3=9 > max(4,3): must split.
        assert len(kernels) >= 2

    def test_split_preserves_semantics(self):
        src = """
        parameter N=24;
        iterator k, j, i;
        double a[N,N,N], b[N,N,N], c[N,N,N], d[N,N,N];
        stencil chain (b, c, d, a) {
          b[k][j][i] = a[k][j][i+3] + a[k][j][i-3];
          c[k][j][i] = b[k][j][i+3] + b[k][j][i-3];
          d[k][j][i] = c[k][j][i+3] + c[k][j][i-3];
        }
        chain (b, c, d, a);
        copyout d;
        """
        ir = build_ir(parse(src))
        inputs = allocate_inputs(ir)
        scalars = default_scalars(ir)
        ref = execute_reference(ir, inputs, scalars)
        split = ir.replace(kernels=recompute_fission(ir, ir.kernels[0]))
        got = execute_reference(split, inputs, scalars)
        assert np.array_equal(ref["d"], got["d"])


class TestDslExport:
    def test_export_reparses(self, sw4_ir):
        text = export_dsl(sw4_ir)
        reparsed = build_ir(parse(text))
        assert len(reparsed.kernels) == len(sw4_ir.kernels)
        assert reparsed.kernels[0].arrays_written() == (
            sw4_ir.kernels[0].arrays_written()
        )

    def test_fission_candidates_all_reparse(self, sw4_ir):
        for candidate in generate_fission_candidates(sw4_ir):
            reparsed = build_ir(parse(candidate.dsl))
            assert reparsed.kernels, candidate.label

    def test_three_candidates(self, sw4_ir):
        labels = [c.label for c in generate_fission_candidates(sw4_ir)]
        assert labels == ["maxfuse", "trivial-fission", "recompute-fission"]

    def test_trivial_candidate_has_three_kernels(self, sw4_ir):
        candidates = generate_fission_candidates(sw4_ir)
        trivial = candidates[1]
        assert len(trivial.ir.kernels) == 3
        # Figure 3c: three stencil definitions in the DSL text.
        assert trivial.dsl.count("stencil ") == 3

    def test_exported_semantics_match(self, sw4_ir):
        """Executing the re-parsed export gives identical results."""
        text = export_dsl(sw4_ir)
        reparsed = build_ir(parse(text))
        inputs = allocate_inputs(sw4_ir)
        scalars = default_scalars(sw4_ir)
        ref = execute_reference(sw4_ir, inputs, scalars)
        got = execute_reference(reparsed, inputs, scalars)
        for out in ("uacc0", "uacc1", "uacc2"):
            assert np.array_equal(ref[out], got[out])
