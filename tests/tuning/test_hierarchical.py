"""Tests for the hierarchical autotuner."""

import pytest

from repro.codegen import KernelPlan, seed_plan_from_pragma
from repro.gpu import simulate
from repro.tuning import HierarchicalTuner, tune_kernel


@pytest.fixture
def base(smoother_ir):
    return seed_plan_from_pragma(smoother_ir, smoother_ir.kernels[0]).replace(
        placements=(("in", "shmem"),)
    )


class TestTuning:
    def test_improves_over_baseline(self, smoother_ir, base):
        baseline = simulate(smoother_ir, base)
        result = tune_kernel(smoother_ir, base)
        assert result.best.time_s <= baseline.time_s

    def test_best_is_spill_free(self, smoother_ir, base):
        result = tune_kernel(smoother_ir, base)
        sim = simulate(smoother_ir, result.best_plan)
        assert not sim.counters.has_spills

    def test_register_escalation(self, smoother_ir, base):
        tuner = HierarchicalTuner(smoother_ir)
        # A large unroll needs more than 32 registers: the tuner must
        # escalate rather than accept a spilling config.
        measurement = tuner.measure(base.replace(unroll=(1, 2, 4)))
        assert measurement is not None
        assert measurement.plan.max_registers >= 32
        sim = simulate(smoother_ir, measurement.plan)
        assert not sim.counters.has_spills

    def test_stage1_explores_blocks_and_unrolls(self, smoother_ir, base):
        tuner = HierarchicalTuner(smoother_ir, keep_trace=True)
        result = tuner.tune(base)
        blocks = {m.plan.block for m in result.trace}
        unrolls = {m.plan.unroll for m in result.trace}
        assert len(blocks) > 3 and len(unrolls) > 1

    def test_stage2_explores_second_tier(self, smoother_ir, base):
        tuner = HierarchicalTuner(smoother_ir, keep_trace=True)
        result = tuner.tune(base)
        stage2 = result.trace[result.stage1_evaluations :]
        assert any(
            m.plan.prefetch
            or m.plan.streaming == "concurrent"
            or m.plan.perspective == "mixed"
            for m in result.trace
        )

    def test_evaluation_count_reported(self, smoother_ir, base):
        tuner = HierarchicalTuner(smoother_ir)
        result = tuner.tune(base)
        assert result.evaluations > result.stage1_evaluations > 0

    def test_unrolling_suppressed(self, smoother_ir, base):
        tuner = HierarchicalTuner(smoother_ir, use_unrolling=False)
        result = tuner.tune(base)
        assert result.best_plan.unroll in ((), (1, 1, 1))

    def test_register_opts_add_retime_variants(self, smoother_ir, base):
        tuner = HierarchicalTuner(
            smoother_ir, use_register_opts=True, keep_trace=True
        )
        result = tuner.tune(base)
        assert any(m.plan.retime for m in result.trace)


class TestCustomHierarchy:
    def test_user_defined_levels(self, smoother_ir, base):
        def level1(ir, plan):
            yield plan.replace(block=(16, 16))
            yield plan.replace(block=(32, 16))

        def level2(ir, plan):
            yield plan.replace(prefetch=True)

        tuner = HierarchicalTuner(smoother_ir, hierarchy=[level1, level2])
        result = tuner.tune(base)
        assert result.best.time_s > 0
        assert result.evaluations <= 8  # 2 + top_k*1 at most (plus retries)
