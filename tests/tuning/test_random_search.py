"""Tests for the OpenTuner-style random-search strawman."""

import pytest

from repro.dsl import parse
from repro.ir import build_ir
from repro.tuning.random_search import random_search

SRC = """
parameter L=256, M=256, N=256;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a;
copyin in, a;
stencil s (B, A, a) {
  B[k][j][i] = a * (A[k][j][i+1] + A[k][j][i-1] + A[k+1][j][i]
    + A[k-1][j][i]);
}
s (out, in, a);
copyout out;
"""


@pytest.fixture(scope="module")
def ir():
    return build_ir(parse(SRC))


class TestRandomSearch:
    def test_respects_budget(self, ir):
        result = random_search(ir, "s.0", budget=50, seed=1)
        assert result.evaluations == 50

    def test_deterministic_for_seed(self, ir):
        a = random_search(ir, "s.0", budget=40, seed=3)
        b = random_search(ir, "s.0", budget=40, seed=3)
        assert a.best == b.best and a.infeasible == b.infeasible

    def test_different_seeds_differ(self, ir):
        a = random_search(ir, "s.0", budget=40, seed=3)
        b = random_search(ir, "s.0", budget=40, seed=4)
        assert a.attempts == b.attempts
        assert a.best != b.best or a.infeasible != b.infeasible

    def test_most_raw_samples_wasted(self, ir):
        """The unpruned space is dominated by unlaunchable configs —
        the reason generic search needs enormous budgets (§V)."""
        result = random_search(ir, "s.0", budget=200, seed=0)
        assert result.infeasible > 0.3 * result.evaluations

    def test_loses_to_hierarchical_under_equal_budget(self, ir):
        from repro.codegen.resources import auto_assign, seed_plan_from_pragma
        from repro.tuning.hierarchical import HierarchicalTuner

        seed = auto_assign(ir, seed_plan_from_pragma(ir, ir.kernels[0])).plan
        tuner = HierarchicalTuner(ir, top_k=2)
        hierarchical = tuner.tune(seed)
        random_result = random_search(
            ir, "s.0", budget=tuner.evaluations, seed=0
        )
        best_random = (
            random_result.best.tflops if random_result.best else 0.0
        )
        # On a trivial kernel a lucky sampler can tie; it must not win.
        # (The benchmark harness asserts a strict win on the real,
        # complex kernels, where the pruned space matters.)
        assert hierarchical.best.tflops >= best_random * 0.999
