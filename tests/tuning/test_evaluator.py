"""Tests for the shared plan-evaluation engine.

The engine's contract is *bit-for-bit equivalence*: memoized, batched,
parallel and incrementally-escalated evaluation must return exactly what
the direct ``validate_plan`` + ``simulate`` path returns.
"""

import random
import time

import pytest

from repro.codegen.plan import REGISTER_LEVELS
from repro.codegen.resources import InvalidPlan, validate_plan
from repro.codegen.tiling import plan_family_key
from repro.gpu.simulator import PlanInfeasible, simulate
from repro.tuning import (
    HierarchicalTuner,
    PlanEvaluator,
    evaluation_caches_disabled,
    plan_fingerprint,
)
from repro.tuning.random_search import _sample_plan


def sampled_plans(ir, kernel_name, count, seed=7):
    rng = random.Random(seed)
    return [_sample_plan(rng, ir, kernel_name) for _ in range(count)]


def direct_result(ir, plan, device):
    """The seed evaluation path: validate + simulate, None if infeasible."""
    try:
        validate_plan(ir, plan)
        return simulate(ir, plan, device)
    except (PlanInfeasible, InvalidPlan, ValueError):
        return None


class TestIdentityProperty:
    def test_matches_direct_simulate_on_random_plans(self, smoother_ir):
        evaluator = PlanEvaluator()
        kernel = smoother_ir.kernels[0].name
        checked = 0
        for plan in sampled_plans(smoother_ir, kernel, 60):
            expected = direct_result(smoother_ir, plan, evaluator.device)
            got = evaluator.try_evaluate(
                smoother_ir, plan, catch=(PlanInfeasible, InvalidPlan, ValueError)
            )
            if expected is None:
                assert got is None
            else:
                checked += 1
                assert got.counters == expected.counters
                assert got.timing == expected.timing
                assert got.occupancy == expected.occupancy
        assert checked > 5  # the sample must exercise feasible plans

    def test_cached_matches_uncached(self, smoother_ir):
        evaluator = PlanEvaluator()
        kernel = smoother_ir.kernels[0].name
        plans = sampled_plans(smoother_ir, kernel, 30, seed=13)
        warm = [evaluator.try_evaluate(smoother_ir, p) for p in plans]
        with evaluation_caches_disabled():
            cold_eval = PlanEvaluator(memoize=False)
            cold = [cold_eval.try_evaluate(smoother_ir, p) for p in plans]
        for cached, fresh in zip(warm, cold):
            assert (cached is None) == (fresh is None)
            if cached is not None:
                assert cached.counters == fresh.counters
                assert cached.timing == fresh.timing


class TestMemoization:
    def test_second_evaluation_is_a_hit(self, smoother_ir, base_plan):
        evaluator = PlanEvaluator()
        first = evaluator.evaluate(smoother_ir, base_plan)
        second = evaluator.evaluate(smoother_ir, base_plan)
        assert first is second
        assert evaluator.stats.requests == 2
        assert evaluator.stats.hits == 1
        assert evaluator.stats.misses == 1

    def test_infeasible_failures_memoized(self, smoother_ir, base_plan):
        bad = base_plan.replace(block=(1024, 1024))
        evaluator = PlanEvaluator()
        assert evaluator.try_evaluate(smoother_ir, bad) is None
        assert evaluator.try_evaluate(smoother_ir, bad) is None
        assert evaluator.stats.misses == 1
        assert evaluator.stats.hits == 1
        assert evaluator.stats.infeasible == 2

    def test_memoize_off_always_simulates(self, smoother_ir, base_plan):
        evaluator = PlanEvaluator(memoize=False)
        evaluator.evaluate(smoother_ir, base_plan)
        evaluator.evaluate(smoother_ir, base_plan)
        assert evaluator.stats.hits == 0
        assert evaluator.stats.misses == 2

    def test_register_levels_share_one_family(self, smoother_ir, base_plan):
        evaluator = PlanEvaluator()
        for level in REGISTER_LEVELS:
            evaluator.evaluate(
                smoother_ir, base_plan.replace(max_registers=level)
            )
        # Four cache entries (one per register level), one plan family.
        assert evaluator.cache_size() == len(REGISTER_LEVELS)
        families = {
            plan_family_key(base_plan.replace(max_registers=level))
            for level in REGISTER_LEVELS
        }
        assert len(families) == 1


class TestBatch:
    def test_results_in_input_order(self, smoother_ir):
        kernel = smoother_ir.kernels[0].name
        plans = sampled_plans(smoother_ir, kernel, 40, seed=3)
        evaluator = PlanEvaluator()
        serial = [
            evaluator.try_evaluate(
                smoother_ir, p, catch=(PlanInfeasible, InvalidPlan, ValueError)
            )
            for p in plans
        ]
        parallel_eval = PlanEvaluator()
        batched = parallel_eval.evaluate_batch(
            smoother_ir,
            plans,
            workers=4,
            catch=(PlanInfeasible, InvalidPlan, ValueError),
        )
        assert len(batched) == len(plans)
        for ser, par in zip(serial, batched):
            assert (ser is None) == (par is None)
            if ser is not None:
                assert par.counters == ser.counters
                assert par.timing == ser.timing

    def test_spill_free_batch_matches_serial(self, smoother_ir, base_plan):
        variants = [
            base_plan.replace(unroll=(1, 1, u)) for u in (1, 2, 4, 8)
        ]
        serial_eval = PlanEvaluator()
        serial = [
            serial_eval.evaluate_spill_free(smoother_ir, v) for v in variants
        ]
        batch_eval = PlanEvaluator()
        batched = batch_eval.evaluate_spill_free_batch(
            smoother_ir, variants, workers=4
        )
        for ser, par in zip(serial, batched):
            assert (ser is None) == (par is None)
            if ser is not None:
                assert par[0] == ser[0]
                assert par[1].timing == ser[1].timing


class TestEscalation:
    def test_incremental_matches_ladder(self, smoother_ir):
        kernel = smoother_ir.kernels[0].name
        plans = [
            p.replace(max_registers=REGISTER_LEVELS[-1])
            for p in sampled_plans(smoother_ir, kernel, 40, seed=29)
        ]
        fast = PlanEvaluator(escalation="incremental")
        slow = PlanEvaluator(escalation="ladder")
        for plan in plans:
            a = fast.evaluate_spill_free(smoother_ir, plan)
            b = slow.evaluate_spill_free(smoother_ir, plan)
            assert (a is None) == (b is None)
            if a is not None:
                assert a[0] == b[0]  # same chosen register level
                assert a[1].timing == b[1].timing
                assert a[1].counters == b[1].counters
        assert fast.stats.misses < slow.stats.misses
        assert fast.stats.rungs_skipped > 0

    def test_skips_spilling_rungs(self, smoother_ir, base_plan):
        # A heavily unrolled plan demands more than 32 registers, so the
        # low rungs must be resolved without simulation.
        evaluator = PlanEvaluator()
        found = evaluator.evaluate_spill_free(
            smoother_ir, base_plan.replace(unroll=(1, 2, 4))
        )
        assert found is not None
        plan, result = found
        assert plan.max_registers > 32
        assert not result.counters.has_spills
        assert evaluator.stats.rungs_skipped > 0

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            PlanEvaluator(escalation="bogus")


class TestFingerprint:
    def test_stable_and_content_addressed(self, base_plan):
        assert plan_fingerprint(base_plan) == plan_fingerprint(base_plan)
        other = base_plan.replace(block=(8, 8))
        assert plan_fingerprint(other) != plan_fingerprint(base_plan)

    def test_register_cap_can_be_factored_out(self, base_plan):
        a = base_plan.replace(max_registers=32)
        b = base_plan.replace(max_registers=255)
        assert plan_fingerprint(a) != plan_fingerprint(b)
        assert plan_fingerprint(a, include_registers=False) == plan_fingerprint(
            b, include_registers=False
        )


class TestTunerIntegration:
    def test_uniform_accounting_counts_infeasible(self, smoother_ir, base_plan):
        tuner = HierarchicalTuner(smoother_ir)
        assert tuner.measure(base_plan.replace(block=(1024, 1024))) is None
        assert tuner.evaluations == 1

    def test_stage2_never_remeasures_a_family(self, smoother_ir, base_plan):
        tuner = HierarchicalTuner(
            smoother_ir, use_register_opts=True, keep_trace=True
        )
        result = tuner.tune(base_plan)
        families = [plan_family_key(m.plan) for m in result.trace]
        assert len(families) == len(set(families))

    def test_result_carries_eval_stats(self, smoother_ir, base_plan):
        tuner = HierarchicalTuner(smoother_ir)
        result = tuner.tune(base_plan)
        assert result.eval_stats is not None
        assert result.eval_stats.requests >= result.evaluations
        assert result.eval_stats.misses > 0

    def test_shared_evaluator_reuses_results(self, smoother_ir, base_plan):
        shared = PlanEvaluator()
        first = HierarchicalTuner(smoother_ir, evaluator=shared)
        second = HierarchicalTuner(smoother_ir, evaluator=shared)
        a = first.tune(base_plan)
        hits_before = shared.stats.hits
        b = second.tune(base_plan)
        assert b.best.plan == a.best.plan
        assert b.best.time_s == a.best.time_s
        # The re-run is served almost entirely from the memo cache.
        assert shared.stats.hits > hits_before

    def test_parallel_tuning_identical_to_serial(self, smoother_ir, base_plan):
        serial = HierarchicalTuner(smoother_ir).tune(base_plan)
        threaded = HierarchicalTuner(smoother_ir, workers=4).tune(base_plan)
        assert threaded.best.plan == serial.best.plan
        assert threaded.best.time_s == serial.best.time_s
        assert threaded.evaluations == serial.evaluations


BLOCKS = [
    (32, 16), (32, 8), (16, 16), (16, 8),
    (64, 8), (64, 4), (8, 8), (8, 16),
]


class TestTimingAccounting:
    """``wall_s`` vs ``cpu_s`` semantics.

    Historically ``wall_s`` summed each thread's time inside the engine,
    so a 4-worker batch reported up to 4x the real elapsed time (and
    nested ``evaluate_spill_free`` -> ``evaluate`` frames double-billed
    even serially).  Now ``wall_s`` merges overlapping busy intervals
    and ``cpu_s`` carries the per-thread sum.
    """

    def _patch_sleepy_simulate(self, monkeypatch, delay):
        import repro.tuning.evaluator as evaluator_module

        real = evaluator_module.simulate

        def sleepy(ir, plan, device, **kwargs):
            time.sleep(delay)
            return real(ir, plan, device, **kwargs)

        monkeypatch.setattr(evaluator_module, "simulate", sleepy)

    def test_serial_wall_matches_cpu(self, smoother_ir, base_plan, monkeypatch):
        delay = 0.01
        self._patch_sleepy_simulate(monkeypatch, delay)
        evaluator = PlanEvaluator()
        for block in BLOCKS[:4]:
            evaluator.evaluate(smoother_ir, base_plan.replace(block=block))
        stats = evaluator.stats
        assert stats.simulations >= 4
        assert stats.cpu_s >= stats.simulations * delay
        # One thread: the merged busy interval equals the per-thread sum.
        assert abs(stats.wall_s - stats.cpu_s) < 1e-6

    def test_nested_calls_bill_outermost_frame_once(
        self, smoother_ir, base_plan, monkeypatch
    ):
        delay = 0.02
        self._patch_sleepy_simulate(monkeypatch, delay)
        evaluator = PlanEvaluator()
        start = time.perf_counter()
        evaluator.evaluate_spill_free(smoother_ir, base_plan)
        elapsed = time.perf_counter() - start
        stats = evaluator.stats
        assert stats.simulations >= 1
        # The nested evaluate() frames must not add their own deltas on
        # top of the evaluate_spill_free() frame.
        assert stats.cpu_s <= elapsed * 1.05 + 1e-3
        assert stats.wall_s <= elapsed * 1.05 + 1e-3

    def test_concurrent_wall_is_elapsed_not_thread_sum(
        self, smoother_ir, base_plan, monkeypatch
    ):
        delay = 0.05
        self._patch_sleepy_simulate(monkeypatch, delay)
        # Scalar path: vectorized batches price whole families in one
        # pass on the submitting thread, which is exactly what this
        # thread-timing test must not exercise.
        evaluator = PlanEvaluator(vectorize=False)
        plans = [base_plan.replace(block=block) for block in BLOCKS]
        start = time.perf_counter()
        results = evaluator.evaluate_batch(smoother_ir, plans, workers=4)
        elapsed = time.perf_counter() - start
        stats = evaluator.stats
        assert all(r is not None for r in results)
        assert stats.simulations == len(BLOCKS)
        # cpu_s is the honest thread-sum: every sleeping simulation shows.
        assert stats.cpu_s >= len(BLOCKS) * delay
        # wall_s is real elapsed engine time: bounded by the clock ...
        assert stats.wall_s <= elapsed * 1.05 + 1e-3
        # ... and, with 4 workers over 8 sleepy jobs, well under the
        # thread-sum the old accounting would have reported.
        assert stats.wall_s < stats.cpu_s * 0.7

    def test_report_and_dict_carry_both_counters(self, smoother_ir, base_plan):
        evaluator = PlanEvaluator()
        evaluator.evaluate(smoother_ir, base_plan)
        as_dict = evaluator.stats.as_dict()
        assert "wall_s" in as_dict and "cpu_s" in as_dict
        described = evaluator.stats.describe()
        assert "ms wall" in described and "ms cpu-sum" in described
