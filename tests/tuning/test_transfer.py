"""Transfer tuning: cross-device journals, warm starts, resume refusal.

The contract under test has two halves that must stay consistent:

* **resume refuses** — replaying device A's journaled *timings* into a
  device B search is poisoning, so ``--resume`` across devices fails
  with the usage exit code 2 (:class:`CheckpointDeviceMismatch`);
* **transfer reads deliberately** — the same journal, mined offline
  for its winners' *shapes* (never timings), legitimately warm-starts
  a narrower device-B search that converges to the cold search's
  winner.
"""

import json

import pytest

from repro.cli import main
from repro.dsl import parse
from repro.gpu.device import P100, TOY, V100
from repro.ir import build_ir
from repro.resilience import TuningJournal
from repro.resilience.errors import (
    CheckpointDeviceMismatch,
    CheckpointError,
    ReproError,
    UsageError,
)
from repro.tuning import (
    TransferSeed,
    WarmStartTuner,
    journaled_winners,
    plan_fingerprint,
    transfer_tune,
    tune_kernel,
)
from tests.gpu.test_pricing import IR, PROTOS

BASE = PROTOS["serial-shm"]

SPATIAL_SRC = """
parameter N=64;
iterator k, j, i;
double a[N,N,N], b[N,N,N];
copyin a;
stencil s (b, a) { b[k][j][i] = a[k][j][i+1] + a[k][j][i-1]; }
s (b, a);
copyout b;
"""


@pytest.fixture
def spec(tmp_path):
    path = tmp_path / "spatial.dsl"
    path.write_text(SPATIAL_SRC)
    return str(path)


@pytest.fixture
def p100_journal(tmp_path):
    """A finished P100 tuning run's journal for the shared star IR."""
    path = str(tmp_path / "p100.jsonl")
    with TuningJournal(path, device=P100.name) as journal:
        tune_kernel(IR, BASE, device=P100, top_k=2, journal=journal)
    return path


class TestResumeRefusal:
    def test_cross_device_open_raises_mismatch(self, p100_journal):
        with pytest.raises(CheckpointDeviceMismatch) as info:
            TuningJournal(p100_journal, device=V100.name)
        err = info.value
        # Catchable under both parents, exits with the usage code.
        assert isinstance(err, CheckpointError)
        assert isinstance(err, UsageError)
        assert isinstance(err, ReproError)
        assert err.exit_code == 2
        assert err.context["recorded"] == "P100"
        assert err.context["requested"] == "V100"
        assert "transfer tuning" in str(err)

    def test_cli_resume_on_other_device_is_exit_2(
        self, spec, tmp_path, capsys
    ):
        journal = str(tmp_path / "ckpt.jsonl")
        assert main(
            ["optimize", spec, "--top-k", "1", "--checkpoint", journal]
        ) == 0
        capsys.readouterr()
        code = main(
            [
                "optimize", spec, "--top-k", "1", "--device", "V100",
                "--checkpoint", journal, "--resume",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error: ")
        assert "'P100'" in err and "'V100'" in err
        assert len(err.strip().splitlines()) == 1  # one line, no traceback

    def test_same_device_resume_still_works(self, spec, tmp_path, capsys):
        journal = str(tmp_path / "ckpt.jsonl")
        assert main(
            ["optimize", spec, "--top-k", "1", "--checkpoint", journal]
        ) == 0
        assert main(
            [
                "optimize", spec, "--top-k", "1",
                "--checkpoint", journal, "--resume",
            ]
        ) == 0
        assert "checkpoint: resuming" in capsys.readouterr().err


class TestJournaledWinners:
    def test_mines_ranked_deduplicated_seeds(self, p100_journal):
        seeds = journaled_winners(p100_journal, IR, limit=None)
        assert seeds
        times = [seed.time_s for seed in seeds]
        assert times == sorted(times)
        signatures = [seed.signature for seed in seeds]
        assert len(signatures) == len(set(signatures))
        assert all(seed.source_device == "P100" for seed in seeds)

    def test_limit_keeps_the_fastest(self, p100_journal):
        full = journaled_winners(p100_journal, IR, limit=None)
        top = journaled_winners(p100_journal, IR, limit=3)
        assert [s.signature for s in top] == [
            s.signature for s in full[:3]
        ]

    def test_other_stencil_yields_nothing(self, p100_journal):
        other = build_ir(parse(SPATIAL_SRC))
        assert journaled_winners(p100_journal, other) == ()

    def test_infeasible_records_are_skipped(self, tmp_path):
        path = str(tmp_path / "sparse.jsonl")
        with TuningJournal(path, device=P100.name) as journal:
            from repro.resilience.checkpoint import ir_fingerprint

            journal.record_candidate(f"{ir_fingerprint(IR)}:sf:xyz", None)
        assert journaled_winners(path, IR) == ()


class TestWarmStartTuner:
    def test_narrows_stage1_and_matches_cold_winner(self, p100_journal):
        cold = tune_kernel(IR, BASE, device=V100, top_k=2)
        warm_tuner = WarmStartTuner(
            IR,
            seeds=journaled_winners(p100_journal, IR),
            device=V100,
            top_k=2,
        )
        warm = warm_tuner.tune(BASE)
        assert warm_tuner.stage1_kept < warm_tuner.stage1_full
        assert warm.evaluations < cold.evaluations
        assert plan_fingerprint(warm.best_plan) == plan_fingerprint(
            cold.best_plan
        )
        assert warm.best.time_s == cold.best.time_s

    def test_unprojectable_seeds_fall_back_to_full_sweep(self):
        # Signatures no stage-1 candidate can match: the warm start
        # must degrade to the cold sweep, not to an empty search.
        alien = BASE.replace(block=(3, 5), unroll=(7, 7, 7))
        tuner = WarmStartTuner(
            IR,
            seeds=(TransferSeed(plan=alien, time_s=1.0, tflops=1.0),),
            neighborhood=0,
            device=V100,
            top_k=2,
        )
        result = tuner.tune(BASE)
        assert tuner.stage1_kept == tuner.stage1_full
        cold = tune_kernel(IR, BASE, device=V100, top_k=2)
        assert plan_fingerprint(result.best_plan) == plan_fingerprint(
            cold.best_plan
        )

    def test_no_seeds_is_a_cold_search(self):
        tuner = WarmStartTuner(IR, seeds=(), device=V100, top_k=2)
        result = tuner.tune(BASE)
        cold = tune_kernel(IR, BASE, device=V100, top_k=2)
        assert tuner.stage1_kept == tuner.stage1_full
        assert result.evaluations == cold.evaluations
        assert plan_fingerprint(result.best_plan) == plan_fingerprint(
            cold.best_plan
        )

    def test_transfer_tune_wrapper(self, p100_journal):
        cold = tune_kernel(IR, BASE, device=V100, top_k=2)
        warm = transfer_tune(
            IR, BASE, p100_journal, device=V100, top_k=2
        )
        assert warm.evaluations < cold.evaluations
        assert plan_fingerprint(warm.best_plan) == plan_fingerprint(
            cold.best_plan
        )

    def test_cross_vendor_transfer_stays_in_target_space(self, tmp_path):
        # TOY (512-thread blocks, 16 KiB LDS) seeds a V100 search: every
        # surviving candidate must be a legal V100 stage-1 candidate.
        path = str(tmp_path / "toy.jsonl")
        with TuningJournal(path, device=TOY.name) as journal:
            tune_kernel(IR, BASE, device=TOY, top_k=2, journal=journal)
        warm = transfer_tune(IR, BASE, path, device=V100, top_k=2)
        assert warm.best is not None
        assert warm.best.time_s > 0


class TestJournalRecordsAccessor:
    def test_records_snapshot_and_kind_filter(self, p100_journal):
        journal = TuningJournal(p100_journal)
        try:
            everything = journal.records()
            candidates = journal.records(kind="candidate")
            assert candidates
            assert all(r["kind"] == "candidate" for r in candidates)
            assert len(candidates) <= len(everything)
            # Snapshot, not a live view.
            everything.clear()
            assert journal.records()
        finally:
            journal.close()

    def test_recorded_device_surfaces_header(self, p100_journal):
        journal = TuningJournal(p100_journal)
        try:
            assert journal.device is None
            assert journal.recorded_device == "P100"
        finally:
            journal.close()

    def test_journal_line_has_device_header(self, p100_journal):
        with open(p100_journal, "r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["kind"] == "header"
        assert header["device"] == "P100"
