"""Tests for the pruned search space (Section V)."""

from repro.codegen import KernelPlan
from repro.tuning import SearchSpace, exhaustive_space_size, seed_variants


class TestBlockCandidates:
    def test_powers_of_two_only(self):
        space = SearchSpace(ndim=3, streaming=True)
        for combo in space.block_candidates():
            for extent in combo:
                assert extent & (extent - 1) == 0

    def test_bounds(self):
        space = SearchSpace(ndim=3, streaming=True)
        for combo in space.block_candidates():
            assert all(4 <= extent <= 256 for extent in combo)
            threads = combo[0] * combo[1]
            assert 32 <= threads <= 1024

    def test_streaming_has_two_tiled_dims(self):
        space = SearchSpace(ndim=3, streaming=True)
        assert all(len(c) == 2 for c in space.block_candidates())

    def test_non_streaming_has_three_dims(self):
        space = SearchSpace(ndim=3, streaming=False)
        assert all(len(c) == 3 for c in space.block_candidates())


class TestUnrollCandidates:
    def test_bandwidth_cap_8(self):
        space = SearchSpace(ndim=3, streaming=True, bandwidth_bound=True)
        totals = [SearchSpace._total(c) for c in space.unroll_candidates()]
        assert max(totals) <= 8

    def test_compute_cap_4(self):
        space = SearchSpace(ndim=3, streaming=True, bandwidth_bound=False)
        totals = [SearchSpace._total(c) for c in space.unroll_candidates()]
        assert max(totals) <= 4

    def test_monotone_ordering(self):
        space = SearchSpace(ndim=3, streaming=True)
        totals = [SearchSpace._total(c) for c in space.unroll_candidates()]
        assert totals == sorted(totals)

    def test_no_stream_axis_unroll(self):
        space = SearchSpace(ndim=3, streaming=True)
        assert all(c[0] == 1 for c in space.unroll_candidates())

    def test_unrolling_disabled(self):
        space = SearchSpace(ndim=3, streaming=True, allow_unroll=False)
        assert space.unroll_candidates() == ((1, 1, 1),)


class TestSpaceSize:
    def test_pruned_much_smaller_than_exhaustive(self):
        space = SearchSpace(ndim=3, streaming=True)
        assert space.size() * 1000 < exhaustive_space_size(3, True)

    def test_seed_variants_cover_space(self):
        space = SearchSpace(ndim=3, streaming=True)
        base = KernelPlan(kernel_names=("k.0",), block=(16, 16),
                          streaming="serial", stream_axis=0)
        variants = list(seed_variants(base, space))
        assert len(variants) == space.size()
        # Base identity is preserved.
        assert all(v.kernel_names == ("k.0",) for v in variants)
