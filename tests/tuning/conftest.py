"""Fixtures for tuning tests."""

import pytest

from repro.dsl import parse
from repro.ir import build_ir

SMOOTHER_SRC = """
parameter L=512, M=512, N=512;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin in, h2inv, a, b;
iterate 12;
#pragma stream k block (32,16)
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1] + A[k][j][i-1]
    + A[k][j+1][i] + A[k][j-1][i] + A[k+1][j][i] + A[k-1][j][i]
    - A[k][j][i]*6.0);
}
jacobi (out, in, h2inv, a, b);
copyout out;
"""

# A multi-output DAG kernel, SW4-like: shared temporaries feed three
# outputs (the paper's Figure 3 shape).
SW4_LIKE_SRC = """
parameter N=48;
iterator k, j, i;
double u0[N,N,N], u1[N,N,N], u2[N,N,N], mu[N,N,N], la[N,N,N],
       uacc0[N,N,N], uacc1[N,N,N], uacc2[N,N,N];
copyin u0, u1, u2, mu, la;
stencil rhs4 (uacc0, uacc1, uacc2, u0, u1, u2, mu, la) {
  mux1 = mu[k][j][i-1] * la[k][j][i-1];
  mux2 = mu[k][j][i+1] * la[k][j][i+1];
  muz1 = mu[k-2][j][i] * la[k-2][j][i];
  muz2 = mu[k+2][j][i] * la[k+2][j][i];
  r0 = mux1*u0[k][j][i-2] + mux2*u0[k][j][i+2] + muz1*u0[k-2][j][i]
     + muz2*u0[k+2][j][i];
  r1 = mux1*u1[k][j][i-2] + mux2*u1[k][j][i+2] + muz1*u1[k-2][j][i]
     + muz2*u1[k+2][j][i];
  r2 = mux1*u2[k][j][i-2] + mux2*u2[k][j][i+2] + muz1*u2[k-2][j][i]
     + muz2*u2[k+2][j][i];
  uacc0[k][j][i] = r0;
  uacc1[k][j][i] = r1;
  uacc2[k][j][i] = r2;
}
rhs4 (uacc0, uacc1, uacc2, u0, u1, u2, mu, la);
copyout uacc0, uacc1, uacc2;
"""


@pytest.fixture
def smoother_ir():
    return build_ir(parse(SMOOTHER_SRC))


@pytest.fixture
def sw4_ir():
    return build_ir(parse(SW4_LIKE_SRC))


@pytest.fixture
def base_plan(smoother_ir):
    from repro.codegen import seed_plan_from_pragma

    return seed_plan_from_pragma(smoother_ir, smoother_ir.kernels[0]).replace(
        placements=(("in", "shmem"),)
    )
