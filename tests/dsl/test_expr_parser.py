"""Unit tests for the expression parser and affine-index lowering."""

import pytest

from repro.dsl import (
    AffineIndex,
    ArrayAccess,
    BinOp,
    Call,
    Name,
    Num,
    ParseError,
    UnaryOp,
    parse_expr_text,
)


class TestLiteralsAndNames:
    def test_int_literal(self):
        expr = parse_expr_text("42")
        assert expr == Num(42.0, is_int=True)

    def test_float_literal(self):
        expr = parse_expr_text("6.0")
        assert expr == Num(6.0, is_int=False)

    def test_scalar_name(self):
        assert parse_expr_text("h2inv") == Name("h2inv")


class TestOperators:
    def test_precedence_mul_over_add(self):
        expr = parse_expr_text("a + b * c")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr_text("a - b - c")
        # (a - b) - c
        assert expr.op == "-"
        assert isinstance(expr.left, BinOp) and expr.left.op == "-"
        assert expr.right == Name("c")

    def test_parentheses_override(self):
        expr = parse_expr_text("a * (b + c)")
        assert expr.op == "*"
        assert isinstance(expr.right, BinOp) and expr.right.op == "+"

    def test_unary_minus(self):
        expr = parse_expr_text("-a * b")
        # (-a) * b
        assert expr.op == "*"
        assert isinstance(expr.left, UnaryOp)

    def test_unary_plus_is_dropped(self):
        assert parse_expr_text("+a") == Name("a")

    def test_division(self):
        expr = parse_expr_text("a / 3.0")
        assert expr.op == "/"


class TestCalls:
    def test_sqrt(self):
        expr = parse_expr_text("sqrt(x)")
        assert expr == Call("sqrt", (Name("x"),))

    def test_fmax_two_args(self):
        expr = parse_expr_text("fmax(a, b)")
        assert isinstance(expr, Call) and len(expr.args) == 2

    def test_wrong_arity(self):
        with pytest.raises(ParseError):
            parse_expr_text("sqrt(a, b)")

    def test_unknown_function(self):
        with pytest.raises(ParseError):
            parse_expr_text("frobnicate(a)")


class TestArrayAccess:
    def test_simple_3d_access(self):
        expr = parse_expr_text("A[k][j][i]")
        assert isinstance(expr, ArrayAccess)
        assert expr.name == "A" and expr.ndim == 3
        assert expr.offsets(("k", "j", "i")) == (0, 0, 0)

    def test_offset_access(self):
        expr = parse_expr_text("A[k-1][j+2][i]")
        assert expr.offsets(("k", "j", "i")) == (-1, 2, 0)

    def test_1d_access(self):
        expr = parse_expr_text("strx[i]")
        assert expr.ndim == 1
        assert expr.offsets(("i",)) == (0,)

    def test_constant_subscript(self):
        expr = parse_expr_text("A[0][j][i]")
        assert expr.indices[0] == AffineIndex((), 0)
        assert expr.offsets(("k", "j", "i")) is None

    def test_general_affine_subscript(self):
        expr = parse_expr_text("A[2*k+1][j][i]")
        assert expr.indices[0] == AffineIndex.of({"k": 2}, 1)
        assert expr.indices[0].single_iterator() is None

    def test_negated_iterator(self):
        expr = parse_expr_text("A[-k][j][i]")
        assert expr.indices[0] == AffineIndex.of({"k": -1}, 0)

    def test_subtraction_of_iterators(self):
        expr = parse_expr_text("A[k-j][j][i]")
        assert expr.indices[0] == AffineIndex.of({"k": 1, "j": -1}, 0)

    def test_non_affine_subscript_rejected(self):
        with pytest.raises(ParseError):
            parse_expr_text("A[k*j][j][i]")

    def test_float_subscript_rejected(self):
        with pytest.raises(ParseError):
            parse_expr_text("A[1.5][j][i]")

    def test_division_in_subscript_rejected(self):
        with pytest.raises(ParseError):
            parse_expr_text("A[k/2][j][i]")


class TestAffineIndex:
    def test_str_simple(self):
        assert str(AffineIndex.of({"k": 1}, 0)) == "k"
        assert str(AffineIndex.of({"k": 1}, 2)) == "k+2"
        assert str(AffineIndex.of({"k": 1}, -1)) == "k-1"

    def test_str_constant(self):
        assert str(AffineIndex.of({}, 3)) == "3"

    def test_shifted(self):
        idx = AffineIndex.of({"k": 1}, -1)
        assert idx.shifted(2) == AffineIndex.of({"k": 1}, 1)

    def test_zero_coeff_dropped(self):
        idx = AffineIndex.of({"k": 0, "j": 1}, 0)
        assert idx.coeff_map == {"j": 1}

    def test_offset_for_mismatched_iterator(self):
        idx = AffineIndex.of({"k": 1}, 1)
        assert idx.offset_for("j") is None


class TestErrors:
    def test_dangling_operator(self):
        with pytest.raises(ParseError):
            parse_expr_text("a +")

    def test_unbalanced_paren(self):
        with pytest.raises(ParseError):
            parse_expr_text("(a + b")

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse_expr_text("a b")
