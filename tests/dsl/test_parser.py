"""Unit tests for the program-level parser, pragmas and validation."""

import pytest

from repro.dsl import (
    ArrayAccess,
    Assignment,
    LocalDecl,
    ParseError,
    ValidationError,
    parse,
)
from repro.dsl.pragmas import parse_assign, parse_pragma

JACOBI = """
parameter L=512, M=512, N=512;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin out, in, h2inv, a, b;
iterate 12;
#pragma stream k block (32,16) unroll j=2
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1]
    + A[k][j][i-1] + A[k][j+1][i] + A[k][j-1][i] +
    A[k+1][j][i] + A[k-1][j][i] - A[k][j][i]*6.0);
}
jacobi (out, in, h2inv, a, b);
copyout out;
"""


class TestJacobiProgram:
    def test_parses(self):
        program = parse(JACOBI)
        assert program.parameter_map == {"L": 512, "M": 512, "N": 512}
        assert program.iterators == ("k", "j", "i")
        assert program.time_iterations == 12

    def test_decls(self):
        program = parse(JACOBI)
        decls = program.decl_map
        assert decls["in"].dims == ("L", "M", "N")
        assert not decls["a"].is_array

    def test_copy_lists(self):
        program = parse(JACOBI)
        assert "h2inv" in program.copyin
        assert program.copyout == ("out",)

    def test_stencil_body(self):
        stencil = parse(JACOBI).stencils[0]
        assert isinstance(stencil.body[0], LocalDecl)
        stmt = stencil.body[1]
        assert isinstance(stmt, Assignment)
        assert isinstance(stmt.lhs, ArrayAccess)
        assert stmt.lhs.name == "B"

    def test_pragma_attached(self):
        stencil = parse(JACOBI).stencils[0]
        assert stencil.pragma.stream_dim == "k"
        assert stencil.pragma.block == (32, 16)
        assert stencil.pragma.unroll_map == {"j": 2}

    def test_call(self):
        program = parse(JACOBI)
        assert program.calls[0].args == ("out", "in", "h2inv", "a", "b")

    def test_array_shape(self):
        program = parse(JACOBI)
        assert program.array_shape("in") == (512, 512, 512)


class TestPragmaParsing:
    def test_full_pragma(self):
        pragma = parse_pragma("#pragma stream k block (32,16) unroll j=2 occupancy 0.5")
        assert pragma.stream_dim == "k"
        assert pragma.block == (32, 16)
        assert pragma.unroll_map == {"j": 2}
        assert pragma.occupancy == 0.5

    def test_clause_order_free(self):
        pragma = parse_pragma("#pragma unroll i=4 stream j")
        assert pragma.stream_dim == "j"
        assert pragma.unroll_map == {"i": 4}

    def test_unroll_comma_list(self):
        pragma = parse_pragma("#pragma unroll j=2, i=4")
        assert pragma.unroll_map == {"j": 2, "i": 4}

    def test_block_3d(self):
        pragma = parse_pragma("#pragma block (16,4,4)")
        assert pragma.block == (16, 4, 4)

    def test_occupancy_out_of_range(self):
        with pytest.raises(ParseError):
            parse_pragma("#pragma occupancy 1.5")
        with pytest.raises(ParseError):
            parse_pragma("#pragma occupancy 0")

    def test_unknown_clause(self):
        with pytest.raises(ParseError):
            parse_pragma("#pragma vectorize i")


class TestAssignParsing:
    def test_two_groups(self):
        assign = parse_assign("#assign shmem (u0,u1,u2), gmem (mu,la)")
        assert assign.placement_map == {
            "u0": "shmem",
            "u1": "shmem",
            "u2": "shmem",
            "mu": "gmem",
            "la": "gmem",
        }

    def test_register_class(self):
        assign = parse_assign("#assign register (A)")
        assert assign.placement_map == {"A": "register"}

    def test_unknown_class(self):
        with pytest.raises(ParseError):
            parse_assign("#assign l2cache (A)")

    def test_duplicate_name(self):
        with pytest.raises(ParseError):
            parse_assign("#assign shmem (A), gmem (A)")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_assign("#assign")


class TestValidation:
    def _program(self, body, decls="double A[N,N], B[N,N];", extra=""):
        return f"""
        parameter N=64;
        iterator j, i;
        {decls}
        copyin A;
        {extra}
        stencil s (B, A) {{
          {body}
        }}
        s (B, A);
        copyout B;
        """

    def test_valid_minimal(self):
        parse(self._program("B[j][i] = A[j][i+1] + A[j][i-1];"))

    def test_undeclared_array_read(self):
        with pytest.raises(ValidationError):
            parse(self._program("B[j][i] = C[j][i];"))

    def test_rank_mismatch(self):
        with pytest.raises(ValidationError):
            parse(self._program("B[j][i] = A[j][i][i];"))

    def test_scalar_subscripted(self):
        src = self._program(
            "B[j][i] = a[j][i];", decls="double A[N,N], B[N,N], a;"
        )
        with pytest.raises(ValidationError):
            parse(src)

    def test_subscript_with_non_iterator(self):
        with pytest.raises(ValidationError):
            parse(self._program("B[j][i] = A[j][q+1];"))

    def test_write_subscript_must_be_simple(self):
        with pytest.raises(ValidationError):
            parse(self._program("B[2*j][i] = A[j][i];"))

    def test_write_repeated_iterator(self):
        with pytest.raises(ValidationError):
            parse(self._program("B[j][j] = A[j][i];"))

    def test_call_arity_mismatch(self):
        src = """
        parameter N=64;
        iterator i;
        double A[N], B[N];
        stencil s (X, Y) { X[i] = Y[i]; }
        s (A);
        """
        with pytest.raises(ValidationError):
            parse(src)

    def test_call_undeclared_arg(self):
        src = """
        parameter N=64;
        iterator i;
        double A[N];
        stencil s (X) { X[i] = X[i]; }
        s (Q);
        """
        with pytest.raises(ValidationError):
            parse(src)

    def test_call_undefined_stencil(self):
        src = """
        parameter N=64;
        iterator i;
        double A[N];
        t (A);
        """
        with pytest.raises(ValidationError):
            parse(src)

    def test_undefined_scalar_read(self):
        with pytest.raises(ValidationError):
            parse(self._program("B[j][i] = A[j][i] * zeta;"))

    def test_local_before_use_ok(self):
        parse(self._program("double c = 2.0; B[j][i] = c * A[j][i];"))

    def test_implicit_local_scalar(self):
        # Figure 3c style: 'mux1 = ...;' without declaration.
        parse(self._program("mux1 = A[j][i] + A[j][i+1]; B[j][i] = mux1;"))

    def test_plus_equals_before_assignment_rejected(self):
        with pytest.raises(ValidationError):
            parse(self._program("r += A[j][i]; B[j][i] = r;"))

    def test_plus_equals_after_assignment_ok(self):
        parse(self._program("r = A[j][i]; r += A[j][i+1]; B[j][i] = r;"))

    def test_local_shadowing_rejected(self):
        src = self._program(
            "double a = 1.0; B[j][i] = a * A[j][i];",
            decls="double A[N,N], B[N,N], a;",
        )
        with pytest.raises(ValidationError):
            parse(src)

    def test_stream_dim_must_be_iterator(self):
        src = """
        parameter N=64;
        iterator j, i;
        double A[N,N], B[N,N];
        #pragma stream z
        stencil s (B, A) { B[j][i] = A[j][i]; }
        s (B, A);
        """
        with pytest.raises(ValidationError):
            parse(src)

    def test_assign_unknown_array(self):
        src = self._program(
            "#assign shmem (Q)\n B[j][i] = A[j][i];"
        )
        with pytest.raises(ValidationError):
            parse(src)

    def test_duplicate_variable(self):
        src = """
        parameter N=64;
        iterator i;
        double A[N], A[N];
        stencil s (A) { A[i] = A[i]; }
        s (A);
        """
        with pytest.raises(ValidationError):
            parse(src)

    def test_copyout_scalar_rejected(self):
        src = """
        parameter N=64;
        iterator i;
        double A[N], c;
        stencil s (A) { A[i] = A[i]; }
        s (A);
        copyout c;
        """
        with pytest.raises(ValidationError):
            parse(src)

    def test_iterate_must_be_positive(self):
        with pytest.raises(ParseError):
            parse("parameter N=4;\niterator i;\ndouble A[N];\niterate 0;")


class TestMultiStencilPrograms:
    SRC = """
    parameter N=128;
    iterator k, j, i;
    double a[N,N,N], b[N,N,N], c[N,N,N];
    copyin a;
    stencil first (out, inp) {
      out[k][j][i] = inp[k][j][i+1] + inp[k][j][i-1];
    }
    stencil second (out, inp) {
      out[k][j][i] = 0.5 * (inp[k+1][j][i] + inp[k-1][j][i]);
    }
    first (b, a);
    second (c, b);
    copyout c;
    """

    def test_two_stencils_two_calls(self):
        program = parse(self.SRC)
        assert [s.name for s in program.stencils] == ["first", "second"]
        assert [c.name for c in program.calls] == ["first", "second"]

    def test_same_stencil_called_twice(self):
        src = self.SRC + "\nfirst (c, b);"
        program = parse(src)
        assert len(program.calls) == 3
