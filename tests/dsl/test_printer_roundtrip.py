"""Round-trip and property tests for the DSL printer.

The printer must produce text that re-parses to an identical AST; this is
load-bearing because kernel fission (Section VI-B) emits its candidates
as DSL specification files.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dsl import parse, format_expr, format_program, parse_expr_text
from repro.dsl.ast import (
    AffineIndex,
    ArrayAccess,
    BinOp,
    Call,
    Name,
    Num,
    UnaryOp,
)

# ---------------------------------------------------------------------------
# Expression strategies
# ---------------------------------------------------------------------------

_iterators = ("k", "j", "i")

_index = st.tuples(
    st.sampled_from(_iterators), st.integers(min_value=-3, max_value=3)
).map(lambda t: AffineIndex.of({t[0]: 1}, t[1]))

_leaf = st.one_of(
    st.integers(min_value=0, max_value=99).map(lambda v: Num(float(v), is_int=True)),
    st.floats(
        min_value=0.001, max_value=100.0, allow_nan=False, allow_infinity=False
    ).map(lambda v: Num(v, is_int=False)),
    st.sampled_from(["a", "b", "c2"]).map(Name),
    st.tuples(st.sampled_from(["A", "B"]), _index, _index, _index).map(
        lambda t: ArrayAccess(t[0], (t[1], t[2], t[3]))
    ),
)


def _compound(children):
    return st.one_of(
        st.tuples(st.sampled_from("+-*/"), children, children).map(
            lambda t: BinOp(t[0], t[1], t[2])
        ),
        children.map(lambda e: UnaryOp("-", e)),
        children.map(lambda e: Call("sqrt", (e,))),
        st.tuples(children, children).map(lambda t: Call("fmax", t)),
    )


expressions = st.recursive(_leaf, _compound, max_leaves=12)


@given(expressions)
@settings(max_examples=200, deadline=None)
def test_expr_roundtrip(expr):
    text = format_expr(expr)
    reparsed = parse_expr_text(text)
    assert _normalize(reparsed) == _normalize(expr), text


def _normalize(expr):
    """Collapse representational differences that do not change meaning.

    The parser drops unary minus on numeric literals differently from the
    printer in one case: ``-(x)`` printed from ``UnaryOp('-', Num)``
    re-parses as ``UnaryOp('-', Num)`` as well, so normalization is the
    identity today; it exists to make failures print structurally.
    """
    return expr


# ---------------------------------------------------------------------------
# Program round trips
# ---------------------------------------------------------------------------

PROGRAMS = [
    """
    parameter L=512, M=512, N=512;
    iterator k, j, i;
    double in[L,M,N], out[L,M,N], a, b, h2inv;
    copyin out, in, h2inv, a, b;
    iterate 12;
    #pragma stream k block (32,16) unroll j=2
    stencil jacobi (B, A, h2inv, a, b) {
      double c = b * h2inv;
      B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1] + A[k][j][i-1]
        + A[k][j+1][i] + A[k][j-1][i] + A[k+1][j][i] + A[k-1][j][i]
        - A[k][j][i]*6.0);
    }
    jacobi (out, in, h2inv, a, b);
    copyout out;
    """,
    """
    parameter N=320;
    iterator k, j, i;
    double u[N,N,N], v[N,N,N], w[N,N,N], strx[N], a;
    copyin u, v, strx, a;
    #pragma stream k block (16,16) occupancy 0.25
    stencil curl (w, u, v, strx, a) {
      #assign shmem (u, v), gmem (strx)
      r = strx[i] * (u[k][j][i+1] - u[k][j][i-1]);
      r += a * (v[k][j+1][i] - v[k][j-1][i]);
      w[k][j][i] = 0.5 * r;
    }
    curl (w, u, v, strx, a);
    copyout w;
    """,
]


def test_program_roundtrip_examples():
    for src in PROGRAMS:
        program = parse(src)
        text = format_program(program)
        assert parse(text) == program


def test_roundtrip_is_fixpoint():
    for src in PROGRAMS:
        program = parse(src)
        once = format_program(program)
        twice = format_program(parse(once))
        assert once == twice
