"""Property: random whole programs survive print -> parse round trips.

Kernel fission writes its candidates back out as DSL text (Figure 3c),
so the printer must be a faithful inverse of the parser for arbitrary
well-formed programs, not just the hand-written examples.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dsl import format_program, parse

_offsets = st.integers(min_value=-2, max_value=2)
_names = st.sampled_from(["A", "B", "C"])


def _off(it, d):
    return it if d == 0 else f"{it}{'+' if d > 0 else ''}{d}"


@st.composite
def _term(draw, arrays):
    array = draw(st.sampled_from(arrays))
    dk, dj, di = draw(_offsets), draw(_offsets), draw(_offsets)
    coeff = draw(st.integers(1, 9))
    return (
        f"0.{coeff}*{array}[{_off('k', dk)}][{_off('j', dj)}]"
        f"[{_off('i', di)}]"
    )


@st.composite
def random_programs(draw):
    n_terms = draw(st.integers(2, 5))
    use_local = draw(st.booleans())
    use_pragma = draw(st.booleans())
    use_assign = draw(st.booleans())
    iterate = draw(st.sampled_from([1, 2, 12]))
    terms = [draw(_term(["A"])) for _ in range(n_terms)]
    body_lines = []
    if use_assign:
        body_lines.append("#assign shmem (A)")
    if use_local:
        body_lines.append(f"double c = {terms[0]};")
        rhs = " + ".join(["c"] + terms[1:])
    else:
        rhs = " + ".join(terms)
    body_lines.append(f"B[k][j][i] = {rhs};")
    pragma = (
        "#pragma stream k block (16,16) unroll j=2" if use_pragma else ""
    )
    iterate_line = f"iterate {iterate};" if iterate > 1 else ""
    return f"""
    parameter L=32, M=32, N=32;
    iterator k, j, i;
    double A[L,M,N], B[L,M,N];
    copyin A;
    {iterate_line}
    {pragma}
    stencil s (B, A) {{
      {chr(10).join(body_lines)}
    }}
    s (B, A);
    copyout B;
    """


@given(random_programs())
@settings(max_examples=120, deadline=None)
def test_program_print_parse_roundtrip(source):
    program = parse(source)
    printed = format_program(program)
    reparsed = parse(printed)
    assert reparsed == program


@given(random_programs())
@settings(max_examples=60, deadline=None)
def test_roundtrip_is_idempotent(source):
    program = parse(source)
    once = format_program(program)
    twice = format_program(parse(once))
    assert once == twice


@given(random_programs())
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_semantics(source):
    """The printed program executes to the same values."""
    import numpy as np

    from repro.gpu.executor import (
        allocate_inputs,
        default_scalars,
        execute_reference,
    )
    from repro.ir import build_ir

    ir = build_ir(parse(source))
    reparsed_ir = build_ir(parse(format_program(parse(source))))
    inputs = allocate_inputs(ir)
    scalars = default_scalars(ir)
    a = execute_reference(ir, inputs, scalars, time_iterations=1)
    b = execute_reference(reparsed_ir, inputs, scalars, time_iterations=1)
    assert np.array_equal(a["B"], b["B"])
