"""Unit tests for the DSL tokenizer."""

import pytest

from repro.dsl import LexError
from repro.dsl.lexer import DIRECTIVE, EOF, FLOAT, ID, INT, PUNCT, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_identifiers(self):
        assert values("abc _x x1 B2c") == ["abc", "_x", "x1", "B2c"]

    def test_integer_literal(self):
        toks = tokenize("512")
        assert toks[0].kind == INT and toks[0].value == "512"

    def test_float_literals(self):
        for text in ["6.0", "0.25", ".5", "1e-3", "2.5e+10", "1E6"]:
            toks = tokenize(text)
            assert toks[0].kind == FLOAT, text

    def test_float_with_f_suffix(self):
        toks = tokenize("1.5f")
        assert toks[0].kind == FLOAT and toks[0].value == "1.5"
        assert toks[1].kind == EOF

    def test_int_then_dot_field_not_supported_as_two_tokens(self):
        # "1.0" is one FLOAT, not INT '.' INT.
        toks = tokenize("1.0")
        assert [t.kind for t in toks] == [FLOAT, EOF]

    def test_punctuation(self):
        assert values("( ) [ ] { } , ; = + - * /") == list("()[]{},;=+-*/")

    def test_two_char_operators(self):
        assert values("+= == <= >=") == ["+=", "==", "<=", ">="]

    def test_eof_always_last(self):
        assert kinds("")[-1] == EOF
        assert kinds("x")[-1] == EOF

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestDirectives:
    def test_pragma_single_token(self):
        toks = tokenize("#pragma stream k block (32,16)\nx = 1;")
        assert toks[0].kind == DIRECTIVE
        assert toks[0].value == "#pragma stream k block (32,16)"
        assert toks[1].value == "x"

    def test_assign_directive(self):
        toks = tokenize("#assign shmem (u0,u1)")
        assert toks[0].kind == DIRECTIVE
        assert "shmem" in toks[0].value

    def test_directive_stops_at_newline(self):
        toks = tokenize("#pragma stream k\ny")
        assert toks[0].value == "#pragma stream k"
        assert toks[1].value == "y"


class TestComments:
    def test_line_comment_stripped(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_block_comment_stripped(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_comment_preserves_line_numbers(self):
        toks = tokenize("a /* one\ntwo */ b")
        assert toks[0].line == 1
        assert toks[1].line == 2


class TestLocations:
    def test_line_and_column(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_lex_error_has_location(self):
        with pytest.raises(LexError) as exc:
            tokenize("x\n  $")
        assert exc.value.line == 2
