"""The 11 benchmark specifications must reproduce Table I exactly."""

import numpy as np
import pytest

from repro.dsl import parse
from repro.gpu.executor import (
    allocate_inputs,
    default_scalars,
    execute_reference,
)
from repro.ir import build_ir, characteristics, program_order
from repro.suite import (
    BENCHMARKS,
    BENCHMARK_ORDER,
    ITERATIVE_BENCHMARKS,
    SPATIAL_BENCHMARKS,
    get,
    load_ir,
)

ALL = list(BENCHMARKS)


@pytest.mark.parametrize("name", ALL)
class TestTableI:
    def test_parses_and_lowers(self, name):
        ir = load_ir(name)
        assert ir.kernels

    def test_domain(self, name):
        spec = get(name)
        assert load_ir(name).domain_shape() == spec.domain

    def test_time_iterations(self, name):
        spec = get(name)
        assert load_ir(name).time_iterations == spec.time_iterations

    def test_order(self, name):
        spec = get(name)
        assert program_order(load_ir(name)) == spec.order

    def test_flops_per_point(self, name):
        spec = get(name)
        row = characteristics(load_ir(name))
        assert row.flops_per_point == spec.flops_per_point

    def test_io_array_count(self, name):
        spec = get(name)
        ir = load_ir(name)
        touched = {n for k in ir.kernels for n in k.io_arrays()}
        full_rank = sum(
            1
            for a in ir.arrays
            if a.ndim == ir.ndim and a.name in touched
        )
        assert full_rank == spec.io_arrays


class TestRegistry:
    def test_order_matches_paper(self):
        assert BENCHMARK_ORDER == (
            "7pt-smoother",
            "27pt-smoother",
            "helmholtz",
            "denoise",
            "miniflux",
            "hypterm",
            "diffterm",
            "addsgd4",
            "addsgd6",
            "rhs4center",
            "rhs4sgcurv",
        )

    def test_split_iterative_spatial(self):
        assert len(ITERATIVE_BENCHMARKS) == 4
        assert len(SPATIAL_BENCHMARKS) == 7

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get("gemm")


class TestStructuralProperties:
    def test_sw4_kernels_have_mixed_ranks(self):
        """The feature that makes STENCILGEN reject them (§VIII-F)."""
        for name in ("addsgd4", "addsgd6"):
            ir = load_ir(name)
            ranks = {a.ndim for a in ir.arrays}
            assert 1 in ranks and 3 in ranks

    def test_multi_kernel_benchmarks(self):
        """Table III lists several kernels for miniflux and diffterm."""
        assert len(load_ir("miniflux").kernels) == 2
        assert len(load_ir("diffterm").kernels) == 2
        assert len(load_ir("denoise").kernels) == 2

    def test_rhs4sgcurv_three_outputs(self):
        ir = load_ir("rhs4sgcurv")
        assert ir.kernels[0].arrays_written() == ("uacc0", "uacc1", "uacc2")

    def test_user_assign_constraints_present(self):
        """§VIII-E: SW4 kernels carry #assign resource guidance."""
        for name in ("addsgd4", "rhs4center", "rhs4sgcurv"):
            ir = load_ir(name)
            assert ir.kernels[0].placements, name


@pytest.mark.parametrize("name", ["7pt-smoother", "helmholtz", "denoise"])
def test_small_domain_execution(name):
    """Benchmarks must actually execute (shrunk domain, 2 iterations)."""
    spec = get(name)
    text = spec.dsl().replace("=512", "=16")
    ir = build_ir(parse(text))
    inputs = allocate_inputs(ir)
    scalars = {k: v * 0.1 for k, v in default_scalars(ir).items()}
    result = execute_reference(ir, inputs, scalars, time_iterations=2)
    out = result[ir.copyout[0]]
    assert np.isfinite(out).all()


@pytest.mark.parametrize("name", ["miniflux", "rhs4center", "addsgd4"])
def test_small_domain_spatial_execution(name):
    spec = get(name)
    text = spec.dsl().replace("W=320", "W=16")
    ir = build_ir(parse(text))
    inputs = allocate_inputs(ir)
    scalars = {k: v * 0.1 for k, v in default_scalars(ir).items()}
    result = execute_reference(ir, inputs, scalars)
    out = result[ir.copyout[0]]
    assert np.isfinite(out).all()
    # Interior was actually updated.
    assert not np.array_equal(out, inputs[ir.copyout[0]])
