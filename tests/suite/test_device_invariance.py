"""P100 cross-device invariance: the registry refactor changed nothing.

The device registry generalized constants that used to be hard-wired to
the P100 (warp width, DRAM transaction sector, spill access rate, L2
inter-block factor, scheduler count).  On the P100 itself every one of
those knobs must resolve to the seed implementation's value, so the
committed benchmark artifacts are replayable *exactly*: same winners,
same EvalStats counts, same TFLOPS — not merely within tolerance.

These tests re-run the committed benches in-process and compare every
deterministic field byte-for-byte (wall-clock fields excluded, machine
speed is not under test).  A failure means a device knob leaked a
different value into the P100 model — a silent re-pricing of every
committed artifact.
"""

import json
import os

from repro.gpu.simulator import reset_simulate_calls
from repro.pipeline import optimize
from repro.suite import load_ir
from repro.suite.bench import run_bench

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
BENCH_SEARCH = os.path.join(REPO_ROOT, "BENCH_search.json")
BENCH_EVALUATOR = os.path.join(REPO_ROOT, "BENCH_evaluator.json")

#: Machine-speed fields, excluded from the byte-for-byte comparison.
VOLATILE = ("wall_s", "engine_wall_s")


def _stable(entry):
    return {k: v for k, v in entry.items() if k not in VOLATILE}


def test_bench_search_profile_is_byte_identical():
    with open(BENCH_SEARCH, "r", encoding="utf-8") as handle:
        committed = json.load(handle)
    current = run_bench(top_k=committed["top_k"])
    assert current["schema"] == committed["schema"]
    assert current["device"] == committed["device"] == "P100"
    assert set(current["benchmarks"]) == set(committed["benchmarks"])
    for name, base in committed["benchmarks"].items():
        assert _stable(current["benchmarks"][name]) == _stable(base), name


def test_bench_evaluator_engine_numbers_are_identical():
    with open(BENCH_EVALUATOR, "r", encoding="utf-8") as handle:
        committed = json.load(handle)
    for name, entry in committed.items():
        ir = load_ir(name)
        reset_simulate_calls()
        outcome = optimize(ir, top_k=2)
        calls = reset_simulate_calls()
        stats = outcome.eval_stats
        engine = entry["engine"]
        assert stats.simulations == engine["priced_candidates"], name
        assert calls == engine["simulate_calls"], name
        assert stats.vectorized == engine["vectorized"], name
        assert stats.screened == engine["prescreen_rejections"], name
        assert stats.lint_rejections == engine["lint_rejections"], name
        assert outcome.tflops == entry["tflops"], name
