"""CLI error hygiene: one-line messages, exit codes, --debug, chaos env.

Exit-code contract (``docs/robustness.md``): 2 = usage error, 3 =
infeasible input (bad DSL, impossible plan), 4 = evaluation/checkpoint
failure; ``--debug`` re-enables tracebacks.
"""

import pytest

from repro.cli import main
from repro.resilience import InjectedFault, TuningJournal, UsageError

SPATIAL_SRC = """
parameter N=64;
iterator k, j, i;
double a[N,N,N], b[N,N,N];
copyin a;
stencil s (b, a) { b[k][j][i] = a[k][j][i+1] + a[k][j][i-1]; }
s (b, a);
copyout b;
"""


@pytest.fixture
def spec(tmp_path):
    path = tmp_path / "spatial.dsl"
    path.write_text(SPATIAL_SRC)
    return str(path)


class TestExitCodes:
    def test_usage_error_is_exit_2(self, spec, tmp_path, capsys):
        journal = tmp_path / "existing.jsonl"
        TuningJournal(str(journal)).close()
        code = main(
            ["optimize", spec, "--checkpoint", str(journal), "--top-k", "1"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error: ")
        assert "--resume" in err
        assert len(err.strip().splitlines()) == 1  # one line, no traceback

    def test_resume_without_checkpoint_is_exit_2(self, spec, capsys):
        code = main(["optimize", spec, "--resume", "--top-k", "1"])
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_resume_missing_file_is_exit_2(self, spec, tmp_path, capsys):
        code = main(
            [
                "optimize", spec, "--top-k", "1",
                "--checkpoint", str(tmp_path / "nope.jsonl"), "--resume",
            ]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_dsl_error_is_exit_3(self, tmp_path, capsys):
        bad = tmp_path / "bad.dsl"
        bad.write_text("parameter N=8;\niterator k j i\n")
        code = main(["optimize", str(bad)])
        err = capsys.readouterr().err
        assert code == 3
        assert err.startswith("error: ")
        assert "line=2" in err

    def test_evaluation_failure_is_exit_4(
        self, spec, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS_RATE", "0.1")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "42")
        code = main(["optimize", spec, "--top-k", "1"])
        err = capsys.readouterr().err
        assert code == 4
        assert "injected fault" in err
        assert "fault_seed=42" in err

    def test_argparse_usage_is_exit_2(self):
        with pytest.raises(SystemExit) as info:
            main(["optimize"])  # missing spec positional
        assert info.value.code == 2


class TestChaosEnvHygiene:
    """Malformed REPRO_CHAOS_* values are usage errors, not tracebacks."""

    def test_bad_rate_is_exit_2_and_names_the_variable(
        self, spec, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS_RATE", "abc")
        code = main(["optimize", spec, "--top-k", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "REPRO_CHAOS_RATE" in err
        assert "'abc'" in err
        assert len(err.strip().splitlines()) == 1

    def test_bad_seed_is_exit_2(self, spec, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_RATE", "0.1")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "4.5")
        code = main(["optimize", spec, "--top-k", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "REPRO_CHAOS_SEED" in err
        assert "not an integer" in err

    def test_bad_transient_is_exit_2(self, spec, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_RATE", "0.1")
        monkeypatch.setenv("REPRO_CHAOS_TRANSIENT", "lots")
        code = main(["optimize", spec, "--top-k", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "REPRO_CHAOS_TRANSIENT" in err


class TestDebugFlag:
    def test_debug_reenables_traceback(self, spec, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_RATE", "0.1")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "42")
        with pytest.raises(InjectedFault):
            main(["--debug", "optimize", spec, "--top-k", "1"])

    def test_debug_with_usage_error(self, spec, tmp_path):
        journal = tmp_path / "existing.jsonl"
        TuningJournal(str(journal)).close()
        with pytest.raises(UsageError):
            main(
                [
                    "--debug", "optimize", spec,
                    "--checkpoint", str(journal), "--top-k", "1",
                ]
            )


class TestChaosRecovery:
    def test_skip_policy_completes_under_chaos(
        self, spec, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS_RATE", "0.1")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "42")
        code = main(
            ["optimize", spec, "--top-k", "1", "--on-error", "skip",
             "--eval-stats"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "warning:" in captured.err
        assert "failed persistently" in captured.err

    def test_transient_chaos_with_retries_is_clean(
        self, spec, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS_RATE", "0.1")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "42")
        monkeypatch.setenv("REPRO_CHAOS_TRANSIENT", "1")
        code = main(["optimize", spec, "--top-k", "1", "--retries", "2"])
        captured = capsys.readouterr()
        assert code == 0
        assert "warning:" not in captured.err


def _stable_report_lines(text):
    """Report lines that must be identical across a resume (wall-clock
    based engine statistics legitimately differ)."""
    return [
        line
        for line in text.splitlines()
        if "ms wall" not in line
        and "evaluation" not in line
        and "eval engine" not in line
    ]


class TestCheckpointFlags:
    def test_checkpoint_then_resume_round_trip(
        self, spec, tmp_path, capsys
    ):
        journal = str(tmp_path / "run.jsonl")
        assert main(
            ["optimize", spec, "--top-k", "1", "--checkpoint", journal]
        ) == 0
        first = capsys.readouterr().out
        assert main(
            ["optimize", spec, "--top-k", "1", "--checkpoint", journal,
             "--resume"]
        ) == 0
        captured = capsys.readouterr()
        assert "checkpoint: resuming" in captured.err
        assert _stable_report_lines(captured.out) == _stable_report_lines(first)

    def test_deep_tune_checkpoint_flags(self, tmp_path, capsys):
        spec = tmp_path / "iter.dsl"
        spec.write_text(
            """
            parameter N=64;
            iterator k, j, i;
            double a[N,N,N], b[N,N,N];
            copyin a;
            iterate 4;
            stencil s (b, a) { b[k][j][i] = a[k][j][i+1] + a[k][j][i-1]; }
            s (b, a);
            copyout b;
            """
        )
        journal = str(tmp_path / "deep.jsonl")
        assert main(
            ["deep-tune", str(spec), "--checkpoint", journal]
        ) == 0
        first = capsys.readouterr().out
        assert main(
            ["deep-tune", str(spec), "--checkpoint", journal, "--resume"]
        ) == 0
        captured = capsys.readouterr()
        assert "checkpoint: resuming" in captured.err
        assert captured.out == first
