"""Retry/backoff policies and the failure budget (incl. properties)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.resilience import (
    FailureBudget,
    FailureBudgetExceeded,
    ON_ERROR_POLICIES,
    RetryPolicy,
    UsageError,
)


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.delay(0) == pytest.approx(0.01)
        assert policy.delay(1) == pytest.approx(0.02)

    def test_delay_caps_at_max(self):
        policy = RetryPolicy(
            max_retries=10, base_delay_s=0.5, factor=2.0, max_delay_s=1.0
        )
        assert policy.delay(0) == pytest.approx(0.5)
        assert policy.delay(5) == pytest.approx(1.0)

    def test_total_delay_is_sum_of_delays(self):
        policy = RetryPolicy(max_retries=3, base_delay_s=0.1, factor=3.0)
        assert policy.total_delay() == pytest.approx(sum(policy.delays()))
        assert len(policy.delays()) == 3

    def test_sleep_uses_injected_callable(self):
        slept = []
        RetryPolicy(base_delay_s=0.25).sleep(0, sleep=slept.append)
        assert slept == [0.25]

    def test_zero_delay_skips_sleep(self):
        slept = []
        RetryPolicy(base_delay_s=0.0).sleep(0, sleep=slept.append)
        assert slept == []

    def test_validation(self):
        with pytest.raises(UsageError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(UsageError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(UsageError):
            RetryPolicy(factor=0.5)

    @given(
        max_retries=st.integers(min_value=0, max_value=20),
        base=st.floats(min_value=0.0, max_value=2.0),
        factor=st.floats(min_value=1.0, max_value=8.0),
        cap=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_backoff_bounds_property(self, max_retries, base, factor, cap):
        """Every delay respects the cap; the sequence is monotone
        non-decreasing; the worst-case total is exactly their sum."""
        policy = RetryPolicy(
            max_retries=max_retries,
            base_delay_s=base,
            factor=factor,
            max_delay_s=cap,
        )
        delays = policy.delays()
        assert len(delays) == max_retries
        for value in delays:
            assert 0.0 <= value <= cap
        assert all(a <= b + 1e-12 for a, b in zip(delays, delays[1:]))
        assert policy.total_delay() == pytest.approx(sum(delays))


class TestFailureBudget:
    def test_unlimited_never_raises(self):
        budget = FailureBudget(None)
        for _ in range(1000):
            budget.charge()
        assert budget.spent == 1000
        assert budget.remaining is None

    def test_raises_past_limit(self):
        budget = FailureBudget(2)
        budget.charge()
        budget.charge()
        assert budget.remaining == 0
        with pytest.raises(FailureBudgetExceeded) as info:
            budget.charge(plan="p3")
        assert info.value.context["failures"] == 3
        assert info.value.context["limit"] == 2
        assert info.value.context["plan"] == "p3"

    def test_zero_budget_tolerates_nothing(self):
        with pytest.raises(FailureBudgetExceeded):
            FailureBudget(0).charge()

    def test_negative_budget_rejected(self):
        with pytest.raises(UsageError):
            FailureBudget(-1)

    @given(limit=st.integers(min_value=0, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_budget_exhausts_exactly_once_past_limit(self, limit):
        budget = FailureBudget(limit)
        for _ in range(limit):
            budget.charge()
        with pytest.raises(FailureBudgetExceeded):
            budget.charge()


class TestEngineRetryIntegration:
    """The evaluator's retry loop honours the policy's attempt bound."""

    def _engine(self, **kwargs):
        from repro.tuning import PlanEvaluator

        return PlanEvaluator(**kwargs)

    def test_attempts_bounded_by_policy(self):
        calls = []

        def always_fails():
            calls.append(1)
            raise RuntimeError("flaky")

        engine = self._engine(
            retry=RetryPolicy(max_retries=3, base_delay_s=0.0)
        )
        with pytest.raises(RuntimeError):
            engine._attempt_with_retries(always_fails)
        assert len(calls) == 4  # 1 attempt + 3 retries
        assert engine.stats.retries == 3

    def test_transient_failure_recovers(self):
        state = {"failures": 0}

        def flaky():
            if state["failures"] < 2:
                state["failures"] += 1
                raise RuntimeError("transient")
            return "ok"

        engine = self._engine(
            retry=RetryPolicy(max_retries=2, base_delay_s=0.0)
        )
        assert engine._attempt_with_retries(flaky) == "ok"
        assert engine.stats.retries == 2

    def test_infeasible_is_never_retried(self):
        from repro.gpu.simulator import PlanInfeasible

        calls = []

        def infeasible():
            calls.append(1)
            raise PlanInfeasible("cannot launch")

        engine = self._engine(
            retry=RetryPolicy(max_retries=5, base_delay_s=0.0)
        )
        with pytest.raises(PlanInfeasible):
            engine._attempt_with_retries(infeasible)
        assert len(calls) == 1
        assert engine.stats.retries == 0

    def test_no_policy_means_single_attempt(self):
        calls = []

        def fails():
            calls.append(1)
            raise RuntimeError("boom")

        engine = self._engine()
        with pytest.raises(RuntimeError):
            engine._attempt_with_retries(fails)
        assert len(calls) == 1

    @given(max_retries=st.integers(min_value=0, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_attempt_count_property(self, max_retries):
        calls = []

        def always_fails():
            calls.append(1)
            raise RuntimeError("flaky")

        engine = self._engine(
            retry=RetryPolicy(max_retries=max_retries, base_delay_s=0.0)
        )
        with pytest.raises(RuntimeError):
            engine._attempt_with_retries(always_fails)
        assert len(calls) == max_retries + 1


def test_policy_names_are_stable():
    # The CLI, docs and journal records reference these names.
    assert ON_ERROR_POLICIES == ("fail-fast", "skip", "degrade")
