"""Chaos suite: whole tuning runs under injected faults.

The headline guarantees, each demonstrated end to end:

* transient faults + retry, and persistent faults + degraded mode, both
  recover to the *bit-identical* best plan of a fault-free run;
* ``on_error=skip`` with a 10% persistent fault rate completes and
  reports every quarantined candidate through the engine statistics and
  the ``repro.obs`` counters;
* an interrupted hierarchical-tuning run resumed from its checkpoint
  journal produces the same best plan as an uninterrupted run, paying
  only for the candidates the first run never reached.
"""

import pytest

from repro.resilience import (
    FailureBudgetExceeded,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    TuningJournal,
)
from repro.tuning import HierarchicalTuner, PlanEvaluator, deep_tune


def _tune(ir, base, **evaluator_kwargs):
    engine = PlanEvaluator(**evaluator_kwargs)
    tuner = HierarchicalTuner(ir, evaluator=engine)
    return tuner.tune(base), engine


@pytest.fixture(scope="module")
def reference(smoother_ir):
    """Fault-free tuning run every chaos scenario is compared against."""
    from repro.codegen import seed_plan_from_pragma

    base = seed_plan_from_pragma(
        smoother_ir, smoother_ir.kernels[0]
    ).replace(placements=(("in", "shmem"),))
    result, engine = _tune(smoother_ir, base)
    return base, result, engine.stats.snapshot()


class TestTransientFaultsWithRetry:
    def test_identical_best_plan(self, smoother_ir, reference):
        base, ref, _ = reference
        injector = FaultInjector(rate=0.2, seed=3, transient_failures=1)
        result, engine = _tune(
            smoother_ir,
            base,
            fault_injector=injector,
            retry=RetryPolicy(max_retries=2, base_delay_s=0.0),
        )
        assert result.best.plan == ref.best.plan
        assert result.best.time_s == ref.best.time_s
        assert result.evaluations == ref.evaluations
        assert injector.injected > 0
        assert engine.stats.retries >= injector.injected
        assert engine.stats.failures == 0

    def test_without_retry_the_same_faults_kill_the_run(
        self, smoother_ir, reference
    ):
        base, _, _ = reference
        injector = FaultInjector(rate=0.2, seed=3, transient_failures=1)
        with pytest.raises(InjectedFault):
            _tune(smoother_ir, base, fault_injector=injector)


class TestSkipPolicy:
    def test_ten_percent_fault_rate_completes_and_reports(
        self, smoother_ir, reference
    ):
        from repro.obs import configure_metrics, get_metrics

        base, ref, _ = reference
        injector = FaultInjector(rate=0.1, seed=11)  # persistent faults
        configure_metrics(True, reset=True)
        try:
            result, engine = _tune(
                smoother_ir, base, fault_injector=injector, on_error="skip"
            )
            snapshot = get_metrics().snapshot()
        finally:
            configure_metrics(False)
        # The run completed, every faulted candidate was quarantined and
        # accounted for, and the per-candidate failures surfaced through
        # the obs counters.
        assert result.evaluations == ref.evaluations
        assert injector.injected > 0
        assert engine.stats.failures == injector.injected
        assert len(engine.failure_records) == min(engine.stats.failures, 100)
        assert engine.failure_records[0].error == "InjectedFault"
        assert snapshot["resilience.failures"]["value"] == engine.stats.failures
        assert snapshot["faults.injected"]["value"] == injector.injected
        # Quarantined candidates can only remove options: the surviving
        # best is never better than the fault-free best.
        assert result.best.time_s >= ref.best.time_s

    def test_failure_budget_aborts_systemic_breakage(
        self, smoother_ir, reference
    ):
        base, _, _ = reference
        injector = FaultInjector(rate=0.5, seed=1)
        with pytest.raises(FailureBudgetExceeded):
            _tune(
                smoother_ir,
                base,
                fault_injector=injector,
                on_error="skip",
                failure_budget=3,
            )


class TestDegradePolicy:
    def test_degraded_mode_recovers_identical_results(
        self, smoother_ir, reference
    ):
        base, ref, _ = reference
        # Persistent faults that live in the fast path: degraded-mode
        # re-evaluation (spare_degraded) bypasses them.
        injector = FaultInjector(rate=0.15, seed=5)
        result, engine = _tune(
            smoother_ir, base, fault_injector=injector, on_error="degrade"
        )
        assert result.best.plan == ref.best.plan
        assert result.best.time_s == ref.best.time_s
        assert engine.stats.degraded == injector.injected > 0
        assert engine.stats.failures == 0


class TestTimeouts:
    def test_hung_evaluation_times_out_and_is_skipped(
        self, smoother_ir, reference
    ):
        base, ref, _ = reference
        injector = FaultInjector(
            rate=0.02, seed=9, kind="hang", hang_s=0.75
        )
        result, engine = _tune(
            smoother_ir,
            base,
            fault_injector=injector,
            timeout_s=0.05,
            on_error="skip",
        )
        assert result.evaluations == ref.evaluations
        assert injector.injected > 0
        assert engine.stats.timeouts >= injector.injected
        assert engine.stats.failures == engine.stats.timeouts


class TestCheckpointResume:
    def test_interrupted_run_resumes_to_identical_best_plan(
        self, smoother_ir, reference, tmp_path
    ):
        """The acceptance scenario: crash mid-search, resume, same
        answer — with the journal replaying the work already done."""
        base, ref, _ = reference
        path = str(tmp_path / "tuning.jsonl")

        # Run 1: crash after 25 evaluations (one persistent fault under
        # fail-fast aborts the run, like a process kill would).
        injector = FaultInjector(rate=1.0, seed=7, after=25, max_faults=1)
        engine = PlanEvaluator(fault_injector=injector)
        journal = TuningJournal(path, device=engine.device.name)
        tuner = HierarchicalTuner(smoother_ir, evaluator=engine, journal=journal)
        with pytest.raises(InjectedFault):
            tuner.tune(base)
        journal.close()

        # Run 2: a fresh process (fresh engine, fresh memo cache)
        # resumes from the journal.
        resumed_journal = TuningJournal(path, device=engine.device.name)
        assert resumed_journal.replayable > 0
        fresh_engine = PlanEvaluator()
        resumed = HierarchicalTuner(
            smoother_ir, evaluator=fresh_engine, journal=resumed_journal
        ).tune(base)
        resumed_journal.close()

        assert resumed.best.plan == ref.best.plan
        assert resumed.best.time_s == ref.best.time_s
        assert resumed.evaluations == ref.evaluations
        # The resume replayed the journaled prefix instead of paying for
        # it again.
        _, _, ref_stats = reference
        assert fresh_engine.stats.requests < ref_stats.requests

    def test_completed_run_replays_entirely(
        self, smoother_ir, reference, tmp_path
    ):
        base, ref, _ = reference
        path = str(tmp_path / "tuning.jsonl")
        with TuningJournal(path) as journal:
            first = HierarchicalTuner(smoother_ir, journal=journal).tune(base)
        with TuningJournal(path) as journal:
            engine = PlanEvaluator()
            replayed = HierarchicalTuner(
                smoother_ir, evaluator=engine, journal=journal
            ).tune(base)
        assert replayed.best.plan == first.best.plan == ref.best.plan
        assert engine.stats.requests == 0  # pure replay

    def test_mid_batch_crash_preserves_completed_candidates(
        self, smoother_ir, reference, tmp_path
    ):
        base, _, _ = reference
        path = str(tmp_path / "tuning.jsonl")
        injector = FaultInjector(rate=1.0, seed=7, after=10, max_faults=1)
        engine = PlanEvaluator(fault_injector=injector)
        with TuningJournal(path) as journal:
            tuner = HierarchicalTuner(
                smoother_ir, evaluator=engine, journal=journal
            )
            with pytest.raises(InjectedFault):
                tuner.tune(base)
        # The crash hit mid-batch, yet the candidates evaluated before
        # it are on disk.
        reopened = TuningJournal(path)
        assert reopened.replayable >= 9
        reopened.close()


class TestDeepTuningResume:
    def test_interrupted_degree_sweep_resumes_identical(
        self, smoother_ir, tmp_path
    ):
        ref = deep_tune(smoother_ir, top_k=2)
        path = str(tmp_path / "deep.jsonl")

        injector = FaultInjector(rate=1.0, seed=13, after=120, max_faults=1)
        engine = PlanEvaluator(fault_injector=injector)
        with TuningJournal(path) as journal:
            with pytest.raises(InjectedFault):
                deep_tune(
                    smoother_ir, top_k=2, evaluator=engine, journal=journal
                )

        with TuningJournal(path) as journal:
            fresh = PlanEvaluator()
            resumed = deep_tune(
                smoother_ir, top_k=2, evaluator=fresh, journal=journal
            )
        assert [e.time_tile for e in resumed.entries] == [
            e.time_tile for e in ref.entries
        ]
        assert [e.measurement.plan for e in resumed.entries] == [
            e.measurement.plan for e in ref.entries
        ]
        assert resumed.tipping_point == ref.tipping_point
        assert resumed.evaluations == ref.evaluations

    def test_completed_degrees_replay_wholesale(self, smoother_ir, tmp_path):
        path = str(tmp_path / "deep.jsonl")
        with TuningJournal(path) as journal:
            first = deep_tune(smoother_ir, top_k=2, journal=journal)
        with TuningJournal(path) as journal:
            engine = PlanEvaluator()
            replayed = deep_tune(
                smoother_ir, top_k=2, evaluator=engine, journal=journal
            )
        assert replayed.tipping_point == first.tipping_point
        assert engine.stats.requests == 0


class TestParallelChaos:
    def test_parallel_workers_same_faults_same_answer(
        self, smoother_ir, reference
    ):
        """Content-addressed injection + per-job guards: a parallel
        chaos run quarantines the same candidates as a serial one."""
        base, _, _ = reference
        serial, serial_engine = _tune(
            smoother_ir,
            base,
            fault_injector=FaultInjector(rate=0.1, seed=11),
            on_error="skip",
        )
        parallel, parallel_engine = _tune(
            smoother_ir,
            base,
            fault_injector=FaultInjector(rate=0.1, seed=11),
            workers=4,
            on_error="skip",
        )
        assert parallel.best.plan == serial.best.plan
        assert parallel.best.time_s == serial.best.time_s
        assert parallel_engine.stats.failures == serial_engine.stats.failures
