"""The unified exception taxonomy: hierarchy, context, exit codes."""

import pytest

from repro.codegen.resources import InvalidPlan
from repro.dsl.errors import DSLError, LexError, ParseError, ValidationError
from repro.gpu.simulator import PlanInfeasible
from repro.resilience import (
    CheckpointCorruptError,
    CheckpointError,
    EvaluationError,
    EvaluationTimeout,
    FailureBudgetExceeded,
    InfeasiblePlanError,
    InjectedFault,
    ReproError,
    UsageError,
)


class TestHierarchy:
    def test_every_error_is_a_repro_error(self):
        for cls in (
            UsageError,
            InfeasiblePlanError,
            EvaluationError,
            EvaluationTimeout,
            InjectedFault,
            FailureBudgetExceeded,
            CheckpointError,
            CheckpointCorruptError,
            DSLError,
        ):
            assert issubclass(cls, ReproError)

    def test_backward_compatible_builtin_bases(self):
        # Pre-taxonomy code (and tests) catch ValueError / RuntimeError;
        # the taxonomy keeps those in the MRO so nothing breaks.
        assert issubclass(InfeasiblePlanError, ValueError)
        assert issubclass(UsageError, ValueError)
        assert issubclass(EvaluationError, RuntimeError)
        assert issubclass(EvaluationTimeout, EvaluationError)
        assert issubclass(InjectedFault, EvaluationError)
        assert issubclass(FailureBudgetExceeded, EvaluationError)
        assert issubclass(CheckpointCorruptError, CheckpointError)

    def test_domain_errors_joined_the_taxonomy(self):
        assert issubclass(PlanInfeasible, InfeasiblePlanError)
        assert issubclass(InvalidPlan, InfeasiblePlanError)
        assert issubclass(PlanInfeasible, ValueError)
        for cls in (LexError, ParseError, ValidationError):
            assert issubclass(cls, DSLError)

    def test_exit_codes(self):
        assert ReproError().exit_code == 1
        assert UsageError().exit_code == 2
        assert InfeasiblePlanError().exit_code == 3
        assert DSLError("x").exit_code == 3
        assert EvaluationError().exit_code == 4
        assert CheckpointError().exit_code == 4


class TestContext:
    def test_context_captured_and_none_dropped(self):
        exc = EvaluationError("boom", plan="p1", phase=None, attempt=2)
        assert exc.context == {"plan": "p1", "attempt": 2}
        assert exc.message == "boom"
        assert str(exc) == "boom"

    def test_with_context_returns_self_without_overwriting(self):
        exc = EvaluationError("boom", plan="original")
        out = exc.with_context(plan="clobber", extra="new")
        assert out is exc
        assert exc.context == {"plan": "original", "extra": "new"}

    def test_describe_is_one_line_and_sorted(self):
        exc = EvaluationError("boom", zeta=1, alpha="a")
        assert exc.describe() == "boom [alpha=a, zeta=1]"
        assert "\n" not in exc.describe()

    def test_describe_without_context(self):
        assert ReproError("plain").describe() == "plain"

    def test_dsl_error_location(self):
        exc = ParseError("bad token", line=3, col=7)
        assert exc.message == "bad token"
        assert exc.line == 3 and exc.col == 7
        assert "line 3" in str(exc)

    def test_catching_by_legacy_type(self):
        with pytest.raises(ValueError):
            raise InfeasiblePlanError("nope")
        with pytest.raises(RuntimeError):
            raise EvaluationTimeout("slow")
