"""The deterministic fault-injection harness."""

import pytest

from repro.resilience import (
    FAULT_KINDS,
    FaultInjector,
    InjectedFault,
    UsageError,
)


class TestSelection:
    def test_rate_zero_never_selects(self):
        injector = FaultInjector(rate=0.0, seed=1)
        assert not any(injector.selects(f"key{i}") for i in range(100))

    def test_rate_one_always_selects(self):
        injector = FaultInjector(rate=1.0, seed=1)
        assert all(injector.selects(f"key{i}") for i in range(100))

    def test_selection_is_deterministic_per_seed(self):
        a = FaultInjector(rate=0.3, seed=42)
        b = FaultInjector(rate=0.3, seed=42)
        keys = [f"candidate-{i}" for i in range(500)]
        assert [a.selects(k) for k in keys] == [b.selects(k) for k in keys]

    def test_different_seeds_fault_different_candidates(self):
        keys = [f"candidate-{i}" for i in range(500)]
        a = {k for k in keys if FaultInjector(rate=0.3, seed=1).selects(k)}
        b = {k for k in keys if FaultInjector(rate=0.3, seed=2).selects(k)}
        assert a != b

    def test_selection_rate_approximates_requested(self):
        injector = FaultInjector(rate=0.2, seed=7)
        hits = sum(injector.selects(f"key{i}") for i in range(2000))
        assert 0.15 < hits / 2000 < 0.25

    def test_order_independence(self):
        """Content-addressing: the faulted set does not depend on the
        order candidates are drawn in (the parallel-batch guarantee)."""
        keys = [f"candidate-{i}" for i in range(200)]
        forward = FaultInjector(rate=0.3, seed=5)
        backward = FaultInjector(rate=0.3, seed=5)
        faulted_fwd = {k for k in keys if forward.selects(k)}
        faulted_bwd = {k for k in reversed(keys) if backward.selects(k)}
        assert faulted_fwd == faulted_bwd

    def test_match_predicate_restricts(self):
        injector = FaultInjector(rate=1.0, seed=0, match=lambda k: "x" in k)
        assert injector.selects("axb")
        assert not injector.selects("abc")


class TestInjection:
    def test_error_kind_raises_injected_fault(self):
        injector = FaultInjector(rate=1.0, seed=0)
        with pytest.raises(InjectedFault) as info:
            injector.invoke("k1")
        assert info.value.context["candidate"] == "k1"
        assert info.value.context["fault_seed"] == 0
        assert injector.injected == 1

    def test_latency_kind_sleeps(self):
        slept = []
        injector = FaultInjector(
            rate=1.0, seed=0, kind="latency", latency_s=0.5, sleep=slept.append
        )
        injector.invoke("k1")
        assert slept == [0.5]

    def test_hang_kind_sleeps_hang_duration(self):
        slept = []
        injector = FaultInjector(
            rate=1.0, seed=0, kind="hang", hang_s=30.0, sleep=slept.append
        )
        injector.invoke("k1")
        assert slept == [30.0]

    def test_transient_faults_clear_after_n_failures(self):
        injector = FaultInjector(rate=1.0, seed=0, transient_failures=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.invoke("k1")
        injector.invoke("k1")  # third attempt succeeds
        injector.invoke("k1")
        assert injector.injected == 2
        assert injector.recovered == 2

    def test_transient_state_is_per_candidate(self):
        injector = FaultInjector(rate=1.0, seed=0, transient_failures=1)
        with pytest.raises(InjectedFault):
            injector.invoke("k1")
        with pytest.raises(InjectedFault):
            injector.invoke("k2")
        injector.invoke("k1")
        injector.invoke("k2")

    def test_after_defers_injection(self):
        injector = FaultInjector(rate=1.0, seed=0, after=3)
        for _ in range(3):
            injector.invoke("k1")
        with pytest.raises(InjectedFault):
            injector.invoke("k1")

    def test_max_faults_bounds_injection(self):
        injector = FaultInjector(rate=1.0, seed=0, max_faults=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.invoke("k1")
        injector.invoke("k1")
        assert injector.injected == 2

    def test_degraded_attempts_are_spared_by_default(self):
        injector = FaultInjector(rate=1.0, seed=0)
        injector.invoke("k1", degraded=True)
        with pytest.raises(InjectedFault):
            injector.invoke("k1", degraded=False)

    def test_spare_degraded_can_be_disabled(self):
        injector = FaultInjector(rate=1.0, seed=0, spare_degraded=False)
        with pytest.raises(InjectedFault):
            injector.invoke("k1", degraded=True)

    def test_invocation_counter(self):
        injector = FaultInjector(rate=0.0, seed=0)
        for _ in range(5):
            injector.invoke("k1")
        assert injector.invocations == 5
        assert injector.injected == 0


class TestValidation:
    def test_known_kinds(self):
        assert FAULT_KINDS == ("error", "latency", "hang")

    def test_unknown_kind_rejected(self):
        with pytest.raises(UsageError):
            FaultInjector(kind="gamma-ray")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(UsageError):
            FaultInjector(rate=1.5)
        with pytest.raises(UsageError):
            FaultInjector(rate=-0.1)

    def test_negative_transients_rejected(self):
        with pytest.raises(UsageError):
            FaultInjector(transient_failures=-1)


class TestObsIntegration:
    def test_injections_counted_in_metrics(self):
        from repro.obs import configure_metrics, get_metrics

        configure_metrics(True, reset=True)
        try:
            injector = FaultInjector(rate=1.0, seed=0)
            for _ in range(3):
                with pytest.raises(InjectedFault):
                    injector.invoke("k1")
            snapshot = get_metrics().snapshot()
        finally:
            configure_metrics(False)
        assert snapshot["faults.injected"]["value"] == 3
