"""The crash-safe JSONL tuning journal: round-trips and torn writes."""

import json

import pytest

from repro.resilience import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointLockedError,
    JOURNAL_VERSION,
    TuningJournal,
    ir_fingerprint,
    plan_from_dict,
    plan_to_dict,
)


class TestPlanSerialization:
    def test_round_trip(self, base_plan):
        assert plan_from_dict(plan_to_dict(base_plan)) == base_plan

    def test_round_trip_preserves_variants(self, base_plan):
        variant = base_plan.replace(
            prefetch=True,
            unroll=(1, 2, 2),
            max_registers=128,
            perspective="mixed",
        )
        assert plan_from_dict(plan_to_dict(variant)) == variant

    def test_round_trip_with_fold_groups(self, smoother_ir, base_plan):
        from repro.ir.folding import FoldGroup
        from repro.tuning import HierarchicalTuner  # noqa: F401 (import check)

        folded = base_plan.replace(
            fold_groups=(FoldGroup(members=("a", "b"), op="+"),)
        )
        assert plan_from_dict(plan_to_dict(folded)) == folded

    def test_dict_is_json_serializable(self, base_plan):
        json.dumps(plan_to_dict(base_plan))

    def test_ir_fingerprint_stable_and_distinct(self, smoother_ir):
        assert ir_fingerprint(smoother_ir) == ir_fingerprint(smoother_ir)
        assert len(ir_fingerprint(smoother_ir)) == 16


class TestJournalRoundTrip:
    def test_records_replay_after_reopen(self, tmp_path, base_plan):
        path = str(tmp_path / "journal.jsonl")
        with TuningJournal(path, device="P100") as journal:
            journal.record_candidate(
                "k1", plan_to_dict(base_plan), time_s=0.5, tflops=1.5
            )
            journal.record_candidate("k2", None)  # infeasible
            assert len(journal) == 2
        reopened = TuningJournal(path, device="P100")
        assert reopened.replayable == 2
        hit = reopened.lookup("k1")
        assert plan_from_dict(hit["plan"]) == base_plan
        assert hit["time_s"] == 0.5
        assert reopened.lookup("k2")["plan"] is None
        assert reopened.lookup("k3") is None
        reopened.close()

    def test_failures_never_satisfy_lookup(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with TuningJournal(path) as journal:
            journal.record_failure("k1", RuntimeError("flaky"))
        reopened = TuningJournal(path)
        assert reopened.lookup("k1") is None
        assert reopened.failure("k1")["error"] == "RuntimeError"
        assert reopened.replayable == 0
        reopened.close()

    def test_later_records_win(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with TuningJournal(path) as journal:
            journal.record_candidate("k1", None)
            journal.record_candidate("k1", {"v": 1})
        reopened = TuningJournal(path)
        assert reopened.lookup("k1")["plan"] == {"v": 1}
        reopened.close()

    def test_degree_records(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with TuningJournal(path) as journal:
            journal.record_degree("ir:degree:2", {"degree": 2, "time_s": 0.1})
        reopened = TuningJournal(path)
        assert reopened.lookup("ir:degree:2")["degree"] == 2
        reopened.close()


class TestCrashRecovery:
    def _journal_with_records(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with TuningJournal(path, device="P100") as journal:
            journal.record_candidate("k1", {"v": 1}, time_s=1.0, tflops=2.0)
            journal.record_candidate("k2", {"v": 2}, time_s=3.0, tflops=4.0)
        return path

    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        path = self._journal_with_records(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "candidate", "key": "k3", "pl')  # torn
        journal = TuningJournal(path, device="P100")
        assert journal.lookup("k1") is not None
        assert journal.lookup("k3") is None  # the torn record is gone
        assert journal.replayable == 2
        journal.close()
        # The file was repaired: it ends on a line boundary again and a
        # fresh append round-trips.
        with open(path, "rb") as handle:
            assert handle.read().endswith(b"\n")
        with TuningJournal(path, device="P100") as journal:
            journal.record_candidate("k3", {"v": 3})
        final = TuningJournal(path, device="P100")
        assert final.lookup("k3")["plan"] == {"v": 3}
        final.close()

    def test_corrupt_middle_line_refuses_to_load(self, tmp_path):
        path = self._journal_with_records(tmp_path)
        lines = open(path, encoding="utf-8").read().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # damage a middle record
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(CheckpointCorruptError) as info:
            TuningJournal(path, device="P100")
        assert info.value.context["line"] == 2

    def test_non_record_json_refuses_to_load(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"no": "kind"}\n')
        with pytest.raises(CheckpointCorruptError):
            TuningJournal(path)

    def test_missing_record_key_refuses_to_load(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"kind": "header", "version": JOURNAL_VERSION})
                + "\n"
            )
            handle.write(json.dumps({"kind": "candidate"}) + "\n")
        with pytest.raises(CheckpointCorruptError):
            TuningJournal(path)


class TestWriterLock:
    def test_second_writer_is_refused(self, tmp_path):
        # flock conflicts across file descriptors even within one
        # process, so this covers the cross-process case too.
        path = str(tmp_path / "journal.jsonl")
        first = TuningJournal(path, device="P100")
        try:
            with pytest.raises(CheckpointLockedError) as info:
                TuningJournal(path, device="P100")
            assert info.value.exit_code == 2  # a usage error at the CLI
            assert "--checkpoint" in str(info.value)
        finally:
            first.close()

    def test_lock_released_on_close(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with TuningJournal(path, device="P100") as journal:
            journal.record_candidate("k1", {"v": 1})
        reopened = TuningJournal(path, device="P100")
        assert reopened.lookup("k1")["plan"] == {"v": 1}
        reopened.close()

    def test_sibling_paths_do_not_conflict(self, tmp_path):
        # The distributed layout: one journal per worker, same
        # directory.  Locks are per-file, not per-directory.
        first = TuningJournal(str(tmp_path / "worker-00.jsonl"))
        second = TuningJournal(str(tmp_path / "worker-01.jsonl"))
        first.close()
        second.close()


class TestCompatibilityChecks:
    def test_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "header", "version": 999}) + "\n")
        with pytest.raises(CheckpointCorruptError):
            TuningJournal(path)

    def test_device_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        TuningJournal(path, device="P100").close()
        with pytest.raises(CheckpointError):
            TuningJournal(path, device="V100")

    def test_device_check_skipped_when_unspecified(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        TuningJournal(path, device="P100").close()
        TuningJournal(path).close()  # no device claim: accepted
