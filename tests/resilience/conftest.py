"""Fixtures for the resilience/chaos test suite.

A reduced-domain Jacobi smoother keeps each full hierarchical tuning
run cheap enough that chaos tests can afford several of them (fault-free
reference, faulted run, interrupted run, resumed run).
"""

import pytest

from repro.codegen import seed_plan_from_pragma
from repro.dsl import parse
from repro.ir import build_ir

SMOOTHER_SRC = """
parameter L=128, M=128, N=128;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin in, h2inv, a, b;
iterate 8;
#pragma stream k block (32,16)
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1] + A[k][j][i-1]
    + A[k][j+1][i] + A[k][j-1][i] + A[k+1][j][i] + A[k-1][j][i]
    - A[k][j][i]*6.0);
}
jacobi (out, in, h2inv, a, b);
copyout out;
"""


@pytest.fixture(scope="module")
def smoother_ir():
    return build_ir(parse(SMOOTHER_SRC))


@pytest.fixture
def base_plan(smoother_ir):
    return seed_plan_from_pragma(smoother_ir, smoother_ir.kernels[0]).replace(
        placements=(("in", "shmem"),)
    )
