"""Crash-safe artifact writes (write-tmp-then-rename)."""

import json
import os

import pytest

from repro.resilience import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
)


class TestRoundTrip:
    def test_bytes(self, tmp_path):
        target = tmp_path / "artifact.bin"
        atomic_write_bytes(str(target), b"\x00\x01payload")
        assert target.read_bytes() == b"\x00\x01payload"

    def test_text(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(str(target), "héllo\n")
        assert target.read_text(encoding="utf-8") == "héllo\n"

    def test_json(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_json(str(target), {"a": [1, 2], "b": None})
        assert json.loads(target.read_text()) == {"a": [1, 2], "b": None}
        assert target.read_text().endswith("\n")

    def test_json_dump_kwargs(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_json(str(target), {"b": 1, "a": 2}, indent=2, sort_keys=True)
        assert target.read_text().index('"a"') < target.read_text().index('"b"')

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "artifact.txt"
        target.write_text("old")
        atomic_write_text(str(target), "new")
        assert target.read_text() == "new"


class TestCrashSafety:
    def test_no_tmp_files_left_behind(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(str(target), "content")
        assert os.listdir(tmp_path) == ["artifact.txt"]

    def test_unserializable_json_preserves_previous_artifact(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_json(str(target), {"good": 1})
        with pytest.raises(TypeError):
            atomic_write_json(str(target), {"bad": object()})
        # The old artifact survives, and no temp debris remains.
        assert json.loads(target.read_text()) == {"good": 1}
        assert os.listdir(tmp_path) == ["artifact.json"]

    def test_failed_write_cleans_up_tmp(self, tmp_path, monkeypatch):
        target = tmp_path / "artifact.txt"
        target.write_text("previous")

        def explode(src, dst):
            raise OSError("disk detached")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            atomic_write_text(str(target), "next")
        monkeypatch.undo()
        assert target.read_text() == "previous"
        assert os.listdir(tmp_path) == ["artifact.txt"]


class TestDirectoryFsync:
    def test_directory_fsynced_after_rename(self, tmp_path, monkeypatch):
        # Power-loss durability: after os.replace, the *parent
        # directory* entry must be fsynced too, or the rename itself
        # can vanish.  Record every fsync with the path (via fstat
        # inode matching) of what it flushed.
        synced = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(os.fstat(fd).st_ino)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        target = tmp_path / "artifact.txt"
        atomic_write_text(str(target), "durable")
        dir_inode = os.stat(tmp_path).st_ino
        assert dir_inode in synced, "containing directory was not fsynced"
        # ... and the directory sync happens after the file's own sync.
        assert synced.index(dir_inode) == len(synced) - 1

    def test_unsyncable_directory_is_tolerated(self, tmp_path, monkeypatch):
        # Platforms (or filesystems) that refuse fsync on a directory fd
        # must not break the write itself.
        real_fsync = os.fsync

        def picky_fsync(fd):
            import stat

            if stat.S_ISDIR(os.fstat(fd).st_mode):
                raise OSError("directory fsync unsupported")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", picky_fsync)
        target = tmp_path / "artifact.txt"
        atomic_write_text(str(target), "still written")
        assert target.read_text() == "still written"


class TestConsumers:
    def test_trace_export_is_atomic(self, tmp_path):
        # write_trace routes through the atomic helper; the written file
        # must always be complete, parseable JSON.
        from repro.obs import configure_tracing, span, write_trace

        configure_tracing(True, clear=True)
        try:
            with span("phase"):
                pass
            target = tmp_path / "trace.json"
            document = write_trace(str(target))
        finally:
            configure_tracing(False)
        on_disk = json.loads(target.read_text())
        assert on_disk["traceEvents"]
        assert len(on_disk["traceEvents"]) == len(document["traceEvents"])
