"""Tests for the top-level generation entry points."""

import pytest

from repro.codegen import (
    KernelPlan,
    ProgramPlan,
    generate_baseline,
    lower,
    realize,
    schedule_tflops,
)
from repro.dsl import parse
from repro.ir import ProgramIR, build_ir

SRC = """
parameter L=128, M=128, N=128;
iterator k, j, i;
double in[L,M,N], out[L,M,N], w;
copyin in, w;
#pragma stream k block (16,16)
stencil s (B, A, w) {
  B[k][j][i] = w * (A[k][j][i+1] + A[k][j][i-1]);
}
s (out, in, w);
copyout out;
"""


class TestLower:
    def test_accepts_text(self):
        assert isinstance(lower(SRC), ProgramIR)

    def test_accepts_program(self):
        assert isinstance(lower(parse(SRC)), ProgramIR)

    def test_accepts_ir(self):
        ir = build_ir(parse(SRC))
        assert lower(ir) is ir


class TestRealize:
    def test_emits_and_simulates_every_launch(self):
        ir = lower(SRC)
        plans = (
            KernelPlan(kernel_names=("s.0",), block=(16, 16),
                       streaming="serial", stream_axis=0),
            KernelPlan(kernel_names=("s.0",), block=(8, 8),
                       streaming="serial", stream_axis=0),
        )
        generated = realize(ir, ProgramPlan(plans=plans))
        assert len(generated.kernels) == 2
        assert len(generated.simulations) == 2
        assert generated.total_time_s > 0
        assert "__global__" in generated.source

    def test_tflops_aggregates_counts(self):
        ir = lower(SRC)
        plan = KernelPlan(kernel_names=("s.0",), block=(16, 16),
                          streaming="serial", stream_axis=0)
        once = realize(ir, ProgramPlan(plans=(plan,)))
        thrice = realize(
            ir, ProgramPlan(plans=(plan,), launch_counts=(3,))
        )
        # Per-launch throughput is identical; totals scale with count.
        assert thrice.tflops == pytest.approx(once.tflops)
        assert thrice.total_time_s == pytest.approx(3 * once.total_time_s)

    def test_schedule_tflops_matches_realize(self):
        ir = lower(SRC)
        plan = KernelPlan(kernel_names=("s.0",), block=(16, 16),
                          streaming="serial", stream_axis=0)
        schedule = ProgramPlan(plans=(plan,))
        assert schedule_tflops(ir, schedule) == pytest.approx(
            realize(ir, schedule).tflops
        )


class TestGenerateBaseline:
    def test_honours_pragma_block(self):
        generated = generate_baseline(SRC)
        assert generated.schedule.plans[0].block == (16, 16)

    def test_auto_resources_toggle(self):
        with_resources = generate_baseline(SRC, auto_resources=True)
        without = generate_baseline(SRC, auto_resources=False)
        assert "in" in with_resources.schedule.plans[0].placement_map
        assert "in" not in without.schedule.plans[0].placement_map

    def test_one_launch_per_kernel(self):
        multi = SRC.replace(
            "s (out, in, w);",
            "s (out, in, w);\n        s (in, out, w);",
        )
        generated = generate_baseline(multi)
        assert len(generated.schedule.plans) == 2
