"""Tests for tile geometry: stages, footprints, buffers."""

import pytest

from repro.codegen.plan import KernelPlan
from repro.codegen.tiling import (
    build_stages,
    buffer_requirements,
    intermediate_specs,
    is_star_along,
    launch_geometry,
    pingpong_pair,
    points_computed,
    read_footprint,
    shmem_bytes_per_block,
)


def _plan(**kw):
    base = dict(
        kernel_names=("jacobi.0",),
        block=(32, 16),
        streaming="serial",
        stream_axis=0,
        placements=(("in", "shmem"),),
    )
    base.update(kw)
    return KernelPlan(**base)


class TestStages:
    def test_single_stage(self, jacobi_ir):
        stages = build_stages(jacobi_ir, _plan())
        assert len(stages) == 1
        assert stages[0].halo == ((1, 1), (1, 1), (1, 1))
        assert stages[0].expand == ((0, 0), (0, 0), (0, 0))
        assert stages[0].is_last

    def test_time_tile_replicates(self, jacobi_ir):
        stages = build_stages(jacobi_ir, _plan(time_tile=3))
        assert len(stages) == 3
        # First stage computes the widest region.
        assert stages[0].expand == ((2, 2), (2, 2), (2, 2))
        assert stages[1].expand == ((1, 1), (1, 1), (1, 1))
        assert stages[2].expand == ((0, 0), (0, 0), (0, 0))

    def test_time_tile_multi_kernel_rejected(self, jacobi_ir):
        plan = _plan(kernel_names=("jacobi.0", "jacobi.0"), time_tile=2)
        with pytest.raises(ValueError):
            build_stages(jacobi_ir, plan)


class TestLaunchGeometry:
    def test_streaming_geometry(self, jacobi_ir):
        # block=(32, 16) assigns threads to tiled axes outermost-first:
        # 32 along j, 16 along i; the sweep covers k entirely.
        geom = launch_geometry(jacobi_ir, _plan())
        assert geom.tile == (512, 32, 16)
        assert geom.blocks_per_axis == (1, 16, 32)
        assert geom.blocks == 512
        assert geom.sweep_axis == 0 and geom.sweep_length == 512

    def test_concurrent_chunks(self, jacobi_ir):
        geom = launch_geometry(
            jacobi_ir, _plan(streaming="concurrent", concurrent_chunks=4)
        )
        assert geom.sweep_length == 128
        assert geom.blocks == 4 * 512

    def test_non_streaming_geometry(self, jacobi_ir):
        geom = launch_geometry(
            jacobi_ir, _plan(streaming="none", block=(4, 8, 16))
        )
        assert geom.tile == (4, 8, 16)
        assert geom.blocks == (512 // 4) * (512 // 8) * (512 // 16)
        assert geom.sweep_axis is None

    def test_unroll_expands_tile(self, jacobi_ir):
        geom = launch_geometry(jacobi_ir, _plan(unroll=(1, 2, 2)))
        assert geom.tile == (512, 64, 32)

    def test_threads_output_perspective(self, jacobi_ir):
        geom = launch_geometry(jacobi_ir, _plan())
        assert geom.threads_per_block == 32 * 16

    def test_threads_input_perspective(self, jacobi_ir):
        geom = launch_geometry(jacobi_ir, _plan(perspective="input"))
        assert geom.threads_per_block == (32 + 2) * (16 + 2)

    def test_threads_mixed_perspective(self, jacobi_ir):
        # Mixed extends only the innermost (coalescing) axis: i holds 16
        # threads here, extended by the 2-wide halo.
        geom = launch_geometry(jacobi_ir, _plan(perspective="mixed"))
        assert geom.threads_per_block == 32 * (16 + 2)


class TestPointsAndFootprints:
    def test_points_single_stage(self, jacobi_ir):
        plan = _plan()
        geom = launch_geometry(jacobi_ir, plan)
        stages = build_stages(jacobi_ir, plan)
        assert points_computed(jacobi_ir, plan, stages[0], geom) == 512 * 16 * 32

    def test_points_grow_for_early_stages(self, jacobi_ir):
        plan = _plan(time_tile=2)
        geom = launch_geometry(jacobi_ir, plan)
        stages = build_stages(jacobi_ir, plan)
        p0 = points_computed(jacobi_ir, plan, stages[0], geom)
        p1 = points_computed(jacobi_ir, plan, stages[1], geom)
        assert p0 > p1

    def test_read_footprint_includes_halo(self, jacobi_ir):
        plan = _plan()
        geom = launch_geometry(jacobi_ir, plan)
        stages = build_stages(jacobi_ir, plan)
        footprint = read_footprint(jacobi_ir, plan, stages[0], geom, "in")
        assert footprint == (512 + 2) * (16 + 2) * (32 + 2)

    def test_footprint_of_unread_array_is_zero(self, jacobi_ir):
        plan = _plan()
        geom = launch_geometry(jacobi_ir, plan)
        stages = build_stages(jacobi_ir, plan)
        assert read_footprint(jacobi_ir, plan, stages[0], geom, "out") == 0


class TestBuffers:
    def test_star_split(self, jacobi_ir):
        # jacobi reads (k±1, j, i): star along k -> 1 shm + 2 reg planes.
        specs = buffer_requirements(jacobi_ir, _plan())
        spec = specs["in"]
        assert spec.shm_planes == 1 and spec.reg_planes == 2
        assert spec.plane_elements == (32 + 2) * (16 + 2)

    def test_box_needs_full_window(self, box_ir):
        plan = _plan(kernel_names=("box.0",))
        specs = buffer_requirements(box_ir, plan)
        spec = specs["in"]
        assert spec.shm_planes == 3 and spec.reg_planes == 0

    def test_star_detection(self, jacobi_ir, box_ir):
        assert is_star_along(jacobi_ir, jacobi_ir.kernels[0], "in", 0)
        assert not is_star_along(box_ir, box_ir.kernels[0], "in", 0)

    def test_gmem_placement_no_buffers(self, jacobi_ir):
        specs = buffer_requirements(jacobi_ir, _plan(placements=()))
        spec = specs["in"]
        assert spec.shm_planes == 0 and spec.reg_planes == 0

    def test_register_placement(self, jacobi_ir):
        specs = buffer_requirements(
            jacobi_ir, _plan(placements=(("in", "register"),))
        )
        spec = specs["in"]
        assert spec.shm_planes == 0 and spec.reg_planes == 3

    def test_retime_single_plane(self, box_ir):
        plan = _plan(kernel_names=("box.0",), retime=True)
        specs = buffer_requirements(box_ir, plan)
        assert specs["in"].shm_planes == 1

    def test_shmem_bytes(self, jacobi_ir):
        total = shmem_bytes_per_block(jacobi_ir, _plan())
        assert total == 34 * 18 * 8  # one plane of doubles

    def test_non_streaming_full_tile(self, jacobi_ir):
        plan = _plan(streaming="none", block=(4, 8, 16))
        specs = buffer_requirements(jacobi_ir, plan)
        spec = specs["in"]
        assert spec.shm_planes == 4 + 2
        assert spec.plane_elements == (8 + 2) * (16 + 2)


class TestIntermediates:
    def test_time_tile_intermediates(self, jacobi_ir):
        specs = intermediate_specs(jacobi_ir, _plan(time_tile=3))
        assert len(specs) == 2  # two hand-offs for three stages
        # jacobi is star along k: one shared plane per hand-off.
        assert all(s.shm_planes == 1 and s.reg_planes == 2 for s in specs)

    def test_no_intermediates_single_stage(self, jacobi_ir):
        assert intermediate_specs(jacobi_ir, _plan()) == ()

    def test_retime_keeps_one_shared_plane(self, jacobi_ir):
        specs = intermediate_specs(jacobi_ir, _plan(time_tile=3, retime=True))
        assert all(s.shm_planes == 1 and s.reg_planes == 0 for s in specs)

    def test_pingpong(self, jacobi_ir):
        assert pingpong_pair(jacobi_ir, jacobi_ir.kernels[0]) == ("out", "in")

    def test_shmem_grows_with_time_tile(self, jacobi_ir):
        small = shmem_bytes_per_block(jacobi_ir, _plan())
        large = shmem_bytes_per_block(jacobi_ir, _plan(time_tile=3))
        assert large > small
