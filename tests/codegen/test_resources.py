"""Tests for resource assignment, rationing, and plan validation."""

import pytest

from repro.codegen import (
    InvalidPlan,
    KernelPlan,
    apply_occupancy_target,
    auto_assign,
    candidate_arrays,
    seed_plan_from_pragma,
    shmem_bytes_per_block,
    validate_plan,
)
from repro.dsl import parse
from repro.gpu import P100, occupancy
from repro.gpu.registers import compiled_registers
from repro.codegen.tiling import launch_geometry
from repro.ir import build_ir

MULTI_ARRAY_SRC = """
parameter N=320;
iterator k, j, i;
double u0[N,N,N], u1[N,N,N], u2[N,N,N], mu[N,N,N], la[N,N,N],
       out[N,N,N], strx[N];
copyin u0, u1, u2, mu, la, strx;
stencil rhs (out, u0, u1, u2, mu, la, strx) {
  r = mu[k][j][i+1] * u0[k][j][i+1] + mu[k][j][i-1] * u0[k][j][i-1];
  r += la[k][j][i+2] * u1[k][j][i+2] + la[k][j][i-2] * u1[k][j][i-2];
  r += u2[k+1][j][i] + u2[k-1][j][i] + u0[k][j+1][i] + u0[k][j-1][i];
  out[k][j][i] = strx[i] * r;
}
rhs (out, u0, u1, u2, mu, la, strx);
copyout out;
"""


@pytest.fixture
def multi_ir():
    return build_ir(parse(MULTI_ARRAY_SRC))


def _plan(ir, **kw):
    base = dict(
        kernel_names=(ir.kernels[0].name,),
        block=(16, 16),
        streaming="serial",
        stream_axis=0,
    )
    base.update(kw)
    return KernelPlan(**base)


class TestAutoAssign:
    def test_assigns_hot_arrays_to_shmem(self, multi_ir):
        result = auto_assign(multi_ir, _plan(multi_ir))
        placed = result.plan.placement_map
        # u0 has the most reads; it must be buffered.
        assert placed.get("u0") == "shmem"

    def test_lower_rank_stays_global(self, multi_ir):
        result = auto_assign(multi_ir, _plan(multi_ir))
        assert "strx" not in result.plan.placement_map
        assert any("strx" in note for note in result.notes)

    def test_respects_user_placements(self, multi_ir):
        plan = _plan(multi_ir, placements=(("mu", "gmem"), ("la", "gmem")))
        result = auto_assign(multi_ir, plan)
        placed = result.plan.placement_map
        assert placed["mu"] == "gmem" and placed["la"] == "gmem"

    def test_budget_respected(self, multi_ir):
        result = auto_assign(multi_ir, _plan(multi_ir, block=(32, 32)))
        assert (
            shmem_bytes_per_block(multi_ir, result.plan)
            <= P100.shared_mem_per_block
        )

    def test_candidates_ranked_by_reads(self, multi_ir):
        ranked = candidate_arrays(multi_ir, _plan(multi_ir))
        assert ranked[0] == "u0"


class TestOccupancyRationing:
    def _occupancy_of(self, ir, plan):
        geometry = launch_geometry(ir, plan)
        shmem = shmem_bytes_per_block(ir, plan)
        regs = compiled_registers(ir, plan)["compiled"]
        return occupancy(P100, geometry.threads_per_block, regs, shmem).occupancy

    def test_demotes_until_target(self, multi_ir):
        # Buffer everything, then demand an occupancy the full set of
        # buffers cannot reach.
        full = auto_assign(multi_ir, _plan(multi_ir, block=(32, 32))).plan
        before = self._occupancy_of(multi_ir, full)
        result = apply_occupancy_target(multi_ir, full, 0.5)
        after = self._occupancy_of(multi_ir, result.plan)
        assert after >= 0.5
        if before < 0.5:
            assert result.demoted

    def test_demotes_least_accessed_first(self, multi_ir):
        full = auto_assign(multi_ir, _plan(multi_ir, block=(32, 32))).plan
        result = apply_occupancy_target(multi_ir, full, 0.5)
        if result.demoted:
            # u0 (most-read) must survive longer than mu/la/u2.
            assert result.demoted[0] != "u0"

    def test_noop_when_target_met(self, multi_ir):
        plan = _plan(multi_ir)
        result = apply_occupancy_target(multi_ir, plan, 0.25)
        assert result.plan == plan and result.demoted == ()

    def test_invalid_target(self, multi_ir):
        with pytest.raises(ValueError):
            apply_occupancy_target(multi_ir, _plan(multi_ir), 1.5)


class TestValidatePlan:
    def test_valid_plan_passes(self, multi_ir):
        validate_plan(multi_ir, _plan(multi_ir))

    def test_unknown_kernel(self, multi_ir):
        with pytest.raises(InvalidPlan):
            validate_plan(multi_ir, _plan(multi_ir, kernel_names=("nope.0",)))

    def test_stream_axis_out_of_range(self, multi_ir):
        with pytest.raises(InvalidPlan):
            validate_plan(multi_ir, _plan(multi_ir, stream_axis=5))

    def test_register_placement_requires_star(self, multi_ir):
        # u0 is read at (k, j±1, i) and (k, j, i±1): star along k is fine,
        # but u2 at (k±1, j, i) is star too.  Build a box case instead:
        src = """
        parameter N=64;
        iterator k, j, i;
        double A[N,N,N], B[N,N,N];
        stencil s (B, A) {
          B[k][j][i] = A[k+1][j+1][i] + A[k-1][j][i];
        }
        s (B, A);
        """
        ir = build_ir(parse(src))
        plan = KernelPlan(
            kernel_names=("s.0",),
            block=(8, 8),
            streaming="serial",
            stream_axis=0,
            placements=(("A", "register"),),
        )
        with pytest.raises(InvalidPlan):
            validate_plan(ir, plan)

    def test_retime_requires_streaming(self, multi_ir):
        plan = _plan(multi_ir, streaming="none", block=(4, 8, 8), retime=True)
        with pytest.raises(InvalidPlan):
            validate_plan(multi_ir, plan)

    def test_retime_requires_homogenizable(self):
        src = """
        parameter N=64;
        iterator k, j, i;
        double A[N,N,N], B[N,N,N], C[N,N,N];
        stencil s (B, A, C) {
          B[k][j][i] = C[k+1][j][i] * A[k-1][j][i];
        }
        s (B, A, C);
        """
        ir = build_ir(parse(src))
        plan = KernelPlan(
            kernel_names=("s.0",),
            block=(8, 8),
            streaming="serial",
            stream_axis=0,
            retime=True,
        )
        with pytest.raises(InvalidPlan):
            validate_plan(ir, plan)


class TestSeedPlan:
    def test_pragma_seeds_plan(self, jacobi_ir):
        plan = seed_plan_from_pragma(jacobi_ir, jacobi_ir.kernels[0])
        assert plan.streaming == "serial"
        assert plan.stream_axis == 0
        assert plan.block == (32, 16)
        assert plan.unroll == (1, 2, 1)

    def test_defaults_without_pragma(self, multi_ir):
        plan = seed_plan_from_pragma(multi_ir, multi_ir.kernels[0])
        assert plan.streaming == "serial"
        assert plan.block == (16, 16)

    def test_assign_directive_flows_into_plan(self):
        src = """
        parameter N=64;
        iterator k, j, i;
        double A[N,N,N], B[N,N,N], C[N,N,N];
        stencil s (B, A, C) {
          #assign shmem (A), gmem (C)
          B[k][j][i] = A[k][j][i+1] + C[k][j][i-1];
        }
        s (B, A, C);
        """
        ir = build_ir(parse(src))
        plan = seed_plan_from_pragma(ir, ir.kernels[0])
        assert plan.placement_map == {"A": "shmem", "C": "gmem"}
