"""Structural tests for the CUDA emitter."""

import re

import pytest

from repro.codegen import KernelPlan, emit_cuda, generate_baseline
from repro.dsl import parse
from repro.ir import build_ir


def _plan(ir, **kw):
    base = dict(
        kernel_names=(ir.kernels[0].name,),
        block=(32, 16),
        streaming="serial",
        stream_axis=0,
        placements=(("in", "shmem"),),
    )
    base.update(kw)
    return KernelPlan(**base)


class TestListing2Structure:
    """The serial-streaming kernel must follow the paper's Listing 2."""

    def test_shared_plane_and_register_window(self, jacobi_ir):
        src = emit_cuda(jacobi_ir, _plan(jacobi_ir)).source
        assert "__shared__ double in_shm_c0" in src
        assert "double in_reg_m1;" in src
        assert "double in_reg_p1;" in src

    def test_two_sync_phases(self, jacobi_ir):
        src = emit_cuda(jacobi_ir, _plan(jacobi_ir)).source
        loop = src[src.index("for (int k") :]
        assert loop.count("__syncthreads();") >= 2

    def test_rotation_shift(self, jacobi_ir):
        src = emit_cuda(jacobi_ir, _plan(jacobi_ir)).source
        assert "in_reg_m1 = in_shm_c0" in src
        assert re.search(r"in_shm_c0\[[^\]]*\]\[[^\]]*\] = in_reg_p1;", src)

    def test_guarded_store(self, jacobi_ir):
        src = emit_cuda(jacobi_ir, _plan(jacobi_ir)).source
        assert "if (k >= 1 && k <= DIM0 - 2" in src
        assert "out[k][j][i] =" in src

    def test_cooperative_fill_clamps(self, jacobi_ir):
        src = emit_cuda(jacobi_ir, _plan(jacobi_ir)).source
        assert "for (int fj = threadIdx.y" in src
        assert "min(DIM2 - 1, max(0," in src

    def test_host_wrapper(self, jacobi_ir):
        src = emit_cuda(jacobi_ir, _plan(jacobi_ir)).source
        assert "void launch_jacobi_0_kernel" in src
        assert "cudaMemcpyHostToDevice" in src
        assert "cudaMemcpyDeviceToHost" in src
        assert "<<<grid, block>>>" in src

    def test_kernel_signature_const_inputs(self, jacobi_ir):
        src = emit_cuda(jacobi_ir, _plan(jacobi_ir)).source
        assert "const double in[]" in src
        assert "double out[]" in src


class TestVariants:
    def test_prefetch_registers(self, jacobi_ir):
        src = emit_cuda(jacobi_ir, _plan(jacobi_ir, prefetch=True)).source
        assert "in_pref" in src
        assert "prefetch" in src

    def test_unroll_loop(self, jacobi_ir):
        src = emit_cuda(jacobi_ir, _plan(jacobi_ir, unroll=(1, 2, 1))).source
        assert "#pragma unroll" in src
        assert "for (int ju = 0; ju < 2; ++ju)" in src
        assert "int j_u = j + ju;" in src
        # The unrolled coordinate is actually used in the body.
        assert "in_shm_c0[j_u - j0]" in src
        assert "out[k][j_u][i]" in src

    def test_gmem_version_reads_global(self, jacobi_ir):
        src = emit_cuda(jacobi_ir, _plan(jacobi_ir, placements=())).source
        assert "__shared__" not in src
        assert "in[k][j][i + 1]" in src

    def test_concurrent_streaming_chunks(self, jacobi_ir):
        plan = _plan(jacobi_ir, streaming="concurrent", concurrent_chunks=4)
        src = emit_cuda(jacobi_ir, plan).source
        assert "k_chunk" in src
        assert "concurrent streaming" in src

    def test_box_window_buffer(self, box_ir):
        plan = _plan(box_ir, kernel_names=("box.0",))
        src = emit_cuda(box_ir, plan).source
        assert "__shared__ double in_shm[3]" in src
        assert "kbuf" in src

    def test_non_streaming_tile(self, jacobi_ir):
        plan = _plan(jacobi_ir, streaming="none", block=(4, 8, 16))
        src = emit_cuda(jacobi_ir, plan).source
        assert "3-D tiled (non-streaming) body" in src
        assert "for (int k" not in src.split("__global__")[1].split("void launch")[0] or True

    def test_retimed_accumulators(self, jacobi_ir):
        plan = _plan(jacobi_ir, retime=True)
        src = emit_cuda(jacobi_ir, plan).source
        assert "out_acc0[3]" in src
        assert "retimed partial sums" in src
        assert "completed plane" in src

    def test_time_tiled_stage_buffers(self, jacobi_ir):
        plan = _plan(jacobi_ir, time_tile=2, block=(16, 16))
        src = emit_cuda(jacobi_ir, plan).source
        # Two compute guards (one per fused stage) + a staging buffer.
        assert src.count("if (k >=") == 2
        assert "_stage0_shm" in src

    def test_scalar_params_forwarded(self, jacobi_ir):
        src = emit_cuda(jacobi_ir, _plan(jacobi_ir)).source
        assert "double a, double b, double h2inv" in src

    def test_plan_description_in_header(self, jacobi_ir):
        plan = _plan(jacobi_ir, prefetch=True)
        src = emit_cuda(jacobi_ir, plan).source
        assert "// plan:" in src and "prefetch" in src.splitlines()[1]


class TestBalancedSource:
    @pytest.mark.parametrize("kw", [
        dict(),
        dict(prefetch=True),
        dict(unroll=(1, 2, 2)),
        dict(time_tile=2, block=(16, 16)),
        dict(placements=()),
        dict(retime=True),
        dict(streaming="none", block=(4, 8, 8)),
        dict(perspective="mixed"),
    ])
    def test_braces_balanced(self, jacobi_ir, kw):
        src = emit_cuda(jacobi_ir, _plan(jacobi_ir, **kw)).source
        assert src.count("{") == src.count("}")


class TestGenerateBaseline:
    SRC = """
    parameter L=128, M=128, N=128;
    iterator k, j, i;
    double in[L,M,N], out[L,M,N], w;
    copyin in, w;
    #pragma stream k block (16,16)
    stencil s (B, A, w) {
      B[k][j][i] = w * (A[k][j][i+1] + A[k][j][i-1]);
    }
    s (out, in, w);
    copyout out;
    """

    def test_end_to_end(self):
        gen = generate_baseline(self.SRC)
        assert gen.tflops > 0
        assert "__global__" in gen.source
        assert len(gen.kernels) == 1

    def test_accepts_ir(self):
        ir = build_ir(parse(self.SRC))
        gen = generate_baseline(ir)
        assert gen.ir is ir

    def test_auto_resources_buffer_input(self):
        gen = generate_baseline(self.SRC)
        assert gen.schedule.plans[0].placement_map.get("in") == "shmem"
