"""CUDA emission for the optimization variants on real suite kernels."""

import pytest

from repro.codegen import emit_cuda
from repro.codegen.resources import auto_assign, seed_plan_from_pragma
from repro.suite import load_ir


@pytest.fixture(scope="module")
def smoother27():
    ir = load_ir("27pt-smoother")
    plan = auto_assign(ir, seed_plan_from_pragma(ir, ir.kernels[0])).plan
    return ir, plan


class TestRetimedEmission:
    def test_retimed_27pt_structure(self, smoother27):
        ir, plan = smoother27
        source = emit_cuda(ir, plan.replace(retime=True)).source
        assert "retimed partial sums" in source
        assert "out_acc0[3]" in source
        assert "completed plane" in source
        assert source.count("{") == source.count("}")

    def test_retimed_terms_are_homogenized(self, smoother27):
        ir, plan = smoother27
        source = emit_cuda(ir, plan.replace(retime=True)).source
        # Every accumulation addresses a slot of the window, and the
        # distributed terms read only the current shared plane.
        assert "_acc0[(k + 3 -" in source

    def test_retimed_fused_launch(self, smoother27):
        ir, plan = smoother27
        source = emit_cuda(
            ir, plan.replace(retime=True, time_tile=2, block=(16, 16))
        ).source
        assert "out_acc0" in source and "out_acc1" in source
        assert source.count("{") == source.count("}")


class TestSw4Emission:
    def test_addsgd4_mixed_rank_access(self):
        ir = load_ir("addsgd4")
        plan = auto_assign(ir, seed_plan_from_pragma(ir, ir.kernels[0])).plan
        source = emit_cuda(ir, plan).source
        # 1-D arrays are read straight from global memory.
        assert "strx[i" in source
        assert "dcx[i" in source
        assert source.count("{") == source.count("}")

    def test_rhs4sgcurv_emits_monolith(self):
        ir = load_ir("rhs4sgcurv")
        plan = auto_assign(ir, seed_plan_from_pragma(ir, ir.kernels[0])).plan
        generated = emit_cuda(ir, plan)
        # A monster kernel: three guarded output stores, balanced braces.
        assert generated.source.count("uacc0[k][j][i]") >= 1
        assert generated.source.count("{") == generated.source.count("}")

    def test_fission_kernels_emit(self):
        from repro.tuning import trivial_fission

        ir = load_ir("rhs4sgcurv")
        split = ir.replace(kernels=trivial_fission(ir, ir.kernels[0]))
        for instance in split.kernels:
            plan = auto_assign(
                split, seed_plan_from_pragma(split, instance)
            ).plan
            source = emit_cuda(split, plan).source
            assert source.count("{") == source.count("}")
            assert "__global__" in source
