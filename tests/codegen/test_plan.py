"""Tests for the KernelPlan value type."""

import pytest

from repro.codegen.plan import KernelPlan, ProgramPlan


def _plan(**kw):
    base = dict(kernel_names=("k.0",), block=(32, 16))
    base.update(kw)
    return KernelPlan(**base)


class TestValidation:
    def test_requires_kernels(self):
        with pytest.raises(ValueError):
            _plan(kernel_names=())

    def test_bad_streaming(self):
        with pytest.raises(ValueError):
            _plan(streaming="diagonal")

    def test_bad_perspective(self):
        with pytest.raises(ValueError):
            _plan(perspective="sideways")

    def test_bad_time_tile(self):
        with pytest.raises(ValueError):
            _plan(time_tile=0)

    def test_bad_block(self):
        with pytest.raises(ValueError):
            _plan(block=(0, 16))

    def test_bad_registers(self):
        with pytest.raises(ValueError):
            _plan(max_registers=300)

    def test_bad_storage(self):
        with pytest.raises(ValueError):
            _plan(placements=(("A", "l3"),))


class TestGeometryHelpers:
    def test_block_threads(self):
        assert _plan(block=(32, 16)).block_threads() == 512

    def test_tiled_axes_streaming(self):
        plan = _plan(streaming="serial", stream_axis=0)
        assert plan.tiled_axes(3) == (1, 2)

    def test_tiled_axes_non_streaming(self):
        assert _plan().tiled_axes(3) == (0, 1, 2)

    def test_block_on_axis_streaming(self):
        # block=(16, 32) maps to axes (j, i) when streaming along k.
        plan = _plan(block=(16, 32), streaming="serial", stream_axis=0)
        assert plan.block_on_axis(0, 3) == 1
        assert plan.block_on_axis(1, 3) == 16
        assert plan.block_on_axis(2, 3) == 32

    def test_tile_extent_includes_unroll(self):
        plan = _plan(block=(16, 32), streaming="serial", stream_axis=0,
                     unroll=(1, 2, 4))
        assert plan.tile_extent(1, 3) == 32
        assert plan.tile_extent(2, 3) == 128

    def test_unroll_factor_defaults(self):
        assert _plan().unroll_factor(2) == 1
        assert _plan(unroll=(2,)).unroll_factor(0) == 2

    def test_total_unroll(self):
        assert _plan(unroll=(1, 2, 4)).total_unroll() == 8

    def test_placement_default_gmem(self):
        assert _plan().placement_of("anything") == "gmem"
        plan = _plan(placements=(("A", "shmem"),))
        assert plan.placement_of("A") == "shmem"

    def test_describe_mentions_key_facts(self):
        plan = _plan(time_tile=3, streaming="serial", prefetch=True,
                     placements=(("A", "shmem"),))
        text = plan.describe()
        assert "tt=3" in text and "prefetch" in text and "shm(A)" in text


class TestProgramPlan:
    def test_counts_default_to_one(self):
        schedule = ProgramPlan(plans=(_plan(), _plan()))
        assert schedule.counts == (1, 1)

    def test_total_time_steps(self):
        schedule = ProgramPlan(
            plans=(_plan(time_tile=4), _plan(time_tile=1)),
            launch_counts=(3, 1),
        )
        assert schedule.total_time_steps() == 13

    def test_count_length_mismatch(self):
        with pytest.raises(ValueError):
            ProgramPlan(plans=(_plan(),), launch_counts=(1, 2))
