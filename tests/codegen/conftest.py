"""Shared fixtures for codegen tests."""

import pytest

from repro.dsl import parse
from repro.ir import build_ir

JACOBI_SRC = """
parameter L=512, M=512, N=512;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin in, h2inv, a, b;
iterate 12;
#pragma stream k block (32,16) unroll j=2
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1] + A[k][j][i-1]
    + A[k][j+1][i] + A[k][j-1][i] + A[k+1][j][i] + A[k-1][j][i]
    - A[k][j][i]*6.0);
}
jacobi (out, in, h2inv, a, b);
copyout out;
"""

BOX_SRC = """
parameter L=256, M=256, N=256;
iterator k, j, i;
double in[L,M,N], out[L,M,N], w;
copyin in, w;
iterate 12;
stencil box (B, A, w) {
  B[k][j][i] = w * (A[k][j][i] + A[k-1][j-1][i] + A[k+1][j+1][i]
    + A[k][j][i+1] + A[k][j][i-1]);
}
box (out, in, w);
copyout out;
"""


@pytest.fixture
def jacobi_ir():
    return build_ir(parse(JACOBI_SRC))


@pytest.fixture
def box_ir():
    return build_ir(parse(BOX_SRC))
