"""Tests for the shared diagnostics core (rules, findings, reports)."""

import pytest

from repro.dsl.ast import SourceSpan
from repro.lint import RULES, Diagnostic, LintReport, Rule, rule
from repro.lint.diagnostics import ERROR, INFO, SARIF_LEVELS, WARNING


class TestRuleRegistry:
    def test_catalog_has_at_least_ten_rules(self):
        assert len(RULES) >= 10

    def test_program_and_plan_families_present(self):
        codes = set(RULES)
        assert any(c.startswith("RL1") for c in codes)
        assert any(c.startswith("RL2") for c in codes)

    def test_codes_are_stable_identifiers(self):
        for code, entry in RULES.items():
            assert code == entry.code
            assert code.startswith("RL") and code[2:].isdigit()
            assert entry.name  # kebab-case slug
            assert entry.summary

    def test_registration_is_idempotent(self):
        existing = next(iter(RULES.values()))
        again = rule(existing.code, "other-name", "info", "other summary")
        assert again is existing

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Rule("RL999", "bogus", "fatal", "nope")

    def test_every_severity_maps_to_sarif(self):
        for entry in RULES.values():
            assert entry.severity in SARIF_LEVELS


class TestDiagnostic:
    def _rule(self):
        return next(r for r in RULES.values() if r.severity == ERROR)

    def test_render_is_one_line_with_position(self):
        d = Diagnostic(
            self._rule(), "boom", span=SourceSpan(3, 7), artifact="x.dsl"
        )
        text = d.render()
        assert text.startswith("x.dsl:3:7: ")
        assert d.code in text and "error" in text and "boom" in text
        assert "\n" not in text

    def test_location_without_span_is_artifact(self):
        d = Diagnostic(self._rule(), "boom", artifact="x.dsl")
        assert d.location() == "x.dsl"

    def test_as_dict_round_trips_position(self):
        d = Diagnostic(self._rule(), "boom", span=SourceSpan(3, 7))
        payload = d.as_dict()
        assert payload["line"] == 3 and payload["col"] == 7
        assert payload["code"] == d.code
        assert payload["severity"] == ERROR


class TestLintReport:
    def _mk(self, severity, line, code_prefix="RL1"):
        entry = next(
            r
            for r in RULES.values()
            if r.severity == severity and r.code.startswith(code_prefix)
        )
        return Diagnostic(entry, "m", span=SourceSpan(line, 1))

    def test_sorted_orders_by_severity_then_position(self):
        report = LintReport(
            (
                self._mk(INFO, 1, "RL2"),
                self._mk(ERROR, 9),
                self._mk(WARNING, 2),
                self._mk(ERROR, 3),
            )
        )
        ordered = [d.severity for d in report.sorted()]
        assert ordered == [ERROR, ERROR, WARNING, INFO]
        errors = [d.span.line for d in report.sorted() if d.severity == ERROR]
        assert errors == [3, 9]

    def test_codes_are_distinct_and_sorted(self):
        report = LintReport(
            (self._mk(ERROR, 1), self._mk(ERROR, 2), self._mk(WARNING, 3))
        )
        codes = report.codes()
        assert codes == tuple(sorted(set(codes)))

    def test_has_errors_and_bool(self):
        empty = LintReport()
        assert not empty and not empty.has_errors
        warn_only = LintReport((self._mk(WARNING, 1),))
        assert warn_only and not warn_only.has_errors
        assert LintReport((self._mk(ERROR, 1),)).has_errors

    def test_merge_concatenates(self):
        a = LintReport((self._mk(ERROR, 1),), artifact="a")
        b = LintReport((self._mk(WARNING, 2),), artifact="b")
        merged = a.merge(b)
        assert len(merged) == 2 and merged.artifact == "a"

    def test_as_dict_counts(self):
        report = LintReport(
            (self._mk(ERROR, 1), self._mk(WARNING, 2), self._mk(WARNING, 3))
        )
        counts = report.as_dict()["counts"]
        assert counts[ERROR] == 1 and counts[WARNING] == 2

    def test_publish_emits_per_rule_counters(self):
        from repro.obs import configure_metrics, get_metrics

        configure_metrics(True, reset=True)
        try:
            d = self._mk(ERROR, 1)
            LintReport((d, d)).publish()
            snapshot = get_metrics().snapshot()
            assert snapshot[f"lint.finding.{d.code}"]["value"] == 2
        finally:
            configure_metrics(False, reset=True)
