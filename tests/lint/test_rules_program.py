"""Adversarial tests for the program rules (RL1xx).

Each case is a minimal ill-formed DSL program that must fire its exact
rule code.  Co-firing with RL102 (semantic validation) is expected for
the AST rules — they run *before* validation precisely so their precise
codes survive — hence the ``code in report.codes()`` idiom.
"""

from repro.lint import lint_source

VALID = """
parameter N=64;
iterator k, j, i;
double A[N,N,N], B[N,N,N];
copyin A;
stencil s (Y, X) { Y[k][j][i] = X[k][j][i+1] + X[k][j][i-1]; }
s (B, A);
copyout B;
"""


def codes_of(source):
    return lint_source(source).codes()


def test_valid_program_is_clean():
    assert codes_of(VALID) == ()


class TestRL101SyntaxError:
    def test_missing_semicolon(self):
        src = VALID.replace("copyin A;", "copyin A")
        report = lint_source(src)
        assert report.codes() == ("RL101",)
        assert report.has_errors

    def test_garbage(self):
        assert codes_of("this is not a stencil program") == ("RL101",)

    def test_syntax_error_carries_position(self):
        report = lint_source(VALID.replace("iterator k, j, i;", "iterator ;"))
        (finding,) = report
        assert finding.span is not None and finding.span.line > 0


class TestRL102InvalidProgram:
    def test_copyin_of_undeclared_array(self):
        src = VALID.replace("copyin A;", "copyin A, ghost;")
        assert "RL102" in codes_of(src)

    def test_call_of_unknown_stencil(self):
        src = VALID.replace("s (B, A);", "t (B, A);")
        assert "RL102" in codes_of(src)


class TestRL103InPlaceRace:
    SRC = """
parameter N=64;
iterator k, j, i;
double A[N,N,N];
copyin A;
stencil s (X) { X[k][j][i] = X[k][j][i+1]; }
s (A);
copyout A;
"""

    def test_offset_in_place_read_fires(self):
        report = lint_source(self.SRC)
        assert "RL103" in report.codes()
        assert report.has_errors

    def test_center_in_place_read_is_legal(self):
        # The pointwise `X += ...` idiom (SW4's addsgd kernels): a
        # zero-offset self-read never races.
        src = self.SRC.replace("X[k][j][i+1]", "X[k][j][i] * 2.0")
        assert "RL103" not in codes_of(src)


class TestRL104DependenceCycle:
    SRC = """
parameter N=64;
iterator k, j, i;
double A[N,N,N], B[N,N,N];
copyin A, B;
stencil f (Y, X) { Y[k][j][i] = X[k][j][i+1]; }
f (A, B);
f (B, A);
copyout A, B;
"""

    def test_two_kernel_cycle_fires(self):
        report = lint_source(self.SRC)
        assert "RL104" in report.codes()
        assert report.has_errors

    def test_linear_chain_is_clean(self):
        src = self.SRC.replace("f (B, A);", "")
        assert "RL104" not in codes_of(src)

    def test_cycle_through_shared_writer_fires(self):
        # Regression: k1 reads X and writes both X and Y; k2 reads Y and
        # writes X back.  The old pure-input graph dropped the X -> Y
        # edge because k1 also writes X, missing the X -> Y -> X cycle —
        # X is *not* k1's exclusive array (k2 writes it too), so the
        # read is a genuine cross-kernel input.
        src = """
parameter N=64;
iterator k, j, i;
double X[N,N,N], Y[N,N,N];
copyin X;
stencil fwd (P, Q, S) { P[k][j][i] = S[k][j][i] + 1.0;
                        Q[k][j][i] = S[k][j][i] * 2.0; }
stencil back (P, S) { P[k][j][i] = S[k][j][i] - 1.0; }
fwd (X, Y, X);
back (X, Y);
copyout X;
"""
        report = lint_source(src)
        assert "RL104" in report.codes()
        assert report.has_errors

    def test_exclusive_in_place_writer_stays_silent(self):
        # The legal accumulate idiom (up += ...) must not read as a
        # cycle when no other kernel writes the accumulator.
        src = """
parameter N=64;
iterator k, j, i;
double A[N,N,N], U[N,N,N];
copyin A, U;
stencil acc (Y, X) { Y[k][j][i] += X[k][j][i]; }
acc (U, A);
copyout U;
"""
        assert "RL104" not in codes_of(src)


class TestRL105HaloOutOfBounds:
    SRC = """
parameter N=3;
iterator k, j, i;
double A[N,N,N], B[N,N,N];
copyin A;
stencil s (Y, X) { Y[k][j][i] = X[k][j][i+2] + X[k][j][i-1]; }
s (B, A);
copyout B;
"""

    def test_halo_meets_extent_fires(self):
        report = lint_source(self.SRC)
        assert "RL105" in report.codes()
        assert report.has_errors

    def test_halo_within_extent_is_clean(self):
        src = self.SRC.replace("parameter N=3;", "parameter N=4;")
        assert "RL105" not in codes_of(src)


class TestRL106UnusedArray:
    def test_untouched_declaration_warns(self):
        src = VALID.replace(
            "double A[N,N,N], B[N,N,N];",
            "double A[N,N,N], B[N,N,N], C[N,N,N];",
        )
        report = lint_source(src)
        assert "RL106" in report.codes()
        assert not report.has_errors  # warning only


class TestRL107DeadWrite:
    SRC = """
parameter N=64;
iterator k, j, i;
double A[N,N,N], B[N,N,N], C[N,N,N];
copyin A;
stencil s (Y, Z, X) {
  Y[k][j][i] = X[k][j][i+1];
  Z[k][j][i] = X[k][j][i-1];
}
s (B, C, A);
copyout B;
"""

    def test_written_never_consumed_warns(self):
        report = lint_source(self.SRC)
        assert "RL107" in report.codes()
        assert not report.has_errors

    def test_copied_out_write_is_live(self):
        src = self.SRC.replace("copyout B;", "copyout B, C;")
        assert "RL107" not in codes_of(src)


class TestRL108UninitializedRead:
    SRC = """
parameter N=64;
iterator k, j, i;
double A[N,N,N], B[N,N,N], C[N,N,N];
copyin A;
stencil s (Y, X) { Y[k][j][i] = X[k][j][i+1]; }
s (B, C);
s (C, A);
copyout B;
"""

    def test_read_before_any_write_warns(self):
        # First kernel consumes C, which is produced only by the second
        # call — in a single-sweep program the first sweep reads garbage.
        report = lint_source(self.SRC)
        assert "RL108" in report.codes()
        assert not report.has_errors

    def test_iterative_feedback_is_initialized(self):
        # Under `iterate` the previous time step initializes every
        # written array, so the same shape is clean.
        src = self.SRC.replace("copyin A;", "copyin A;\niterate 4;")
        assert "RL108" not in codes_of(src)

    def test_producer_before_consumer_is_clean(self):
        src = self.SRC.replace("s (B, C);\ns (C, A);", "s (C, A);\ns (B, C);")
        assert "RL108" not in codes_of(src)


class TestRL109ZeroExtent:
    def test_zero_parameter_extent_fires(self):
        src = VALID.replace("parameter N=64;", "parameter N=0;")
        assert "RL109" in codes_of(src)

    def test_zero_extent_on_one_axis_fires(self):
        src = VALID.replace("parameter N=64;", "parameter N=64, Z=0;")
        src = src.replace("A[N,N,N]", "A[N,N,Z]")
        assert "RL109" in codes_of(src)


class TestRL110DtypeMix:
    def test_float_double_mix_warns(self):
        src = VALID.replace(
            "double A[N,N,N], B[N,N,N];",
            "double A[N,N,N];\nfloat B[N,N,N];",
        )
        assert "RL110" in codes_of(src)

    def test_single_dtype_is_clean(self):
        assert "RL110" not in codes_of(VALID)


class TestRL111DirectiveWrongIterator:
    def test_stream_of_unknown_iterator(self):
        src = VALID.replace(
            "stencil s", "#pragma stream w block (32,16)\nstencil s"
        )
        assert "RL111" in codes_of(src)

    def test_unroll_of_unknown_iterator(self):
        src = VALID.replace(
            "stencil s",
            "#pragma stream k block (32,16) unroll w=2\nstencil s",
        )
        assert "RL111" in codes_of(src)

    def test_unroll_of_streaming_iterator(self):
        src = VALID.replace(
            "stencil s",
            "#pragma stream k block (32,16) unroll k=2\nstencil s",
        )
        assert "RL111" in codes_of(src)

    def test_well_formed_pragma_is_clean(self):
        src = VALID.replace(
            "stencil s",
            "#pragma stream k block (32,16) unroll i=2\nstencil s",
        )
        assert "RL111" not in codes_of(src)
