"""Adversarial tests for the transformation certifier (RL3xx).

Every refutation the certifier emits must rest on a *live* witness: the
tests replay each one through the instrumented reference executor and
assert the two events really hold different values.  RL301 additionally
gets an end-to-end check — the refuted stage order executes to output
that diverges from the reference — because mis-ordered fusion is the
one refuted shape the block-tiled executor will actually run.
"""

import numpy as np
import pytest

from repro.codegen.plan import KernelPlan
from repro.dsl import parse
from repro.gpu.device import P100
from repro.gpu.executor import allocate_inputs, execute_plan, execute_reference
from repro.gpu.simulator import PlanInfeasible
from repro.ir import build_ir
from repro.lint import (
    certification_disabled,
    certifier_enabled,
    certify_plan_transformations,
    check_plan,
    plan_rejection,
    replay_witness,
    set_certification_enabled,
)
from repro.obs import configure_metrics, get_metrics
from repro.tuning import PlanEvaluator


def ir_of(src):
    return build_ir(parse(src))


def certified_errors(ir, plan):
    findings = certify_plan_transformations(ir, plan)
    assert all(d.severity == "error" for d in findings)
    return findings


def assert_live_witness(ir, diag):
    """Every RL3xx error must carry a witness that replays to divergence."""
    assert diag.witness is not None, f"{diag.code} carries no witness"
    replay = replay_witness(ir, diag.witness)
    assert replay.diverged, (
        f"{diag.code} witness is vacuous: both events hold "
        f"{replay.required_value}"
    )
    return replay


PRODUCER_CONSUMER = """
parameter N=64;
iterator k, j, i;
double A[N,N,N], T[N,N,N], B[N,N,N];
copyin A;
stencil produce (Y, X) { Y[k][j][i] = X[k][j][i+1] + X[k][j][i-1]; }
stencil consume (Y, X) { Y[k][j][i] = X[k+1][j][i] + X[k][j][i]; }
produce (T, A);
consume (B, T);
copyout B;
"""

ITERATIVE_PAIR = """
parameter N=32;
iterator k, j, i;
double A[N,N,N], T[N,N,N], B[N,N,N];
iterate 2;
copyin A;
stencil produce (Y, X) { Y[k][j][i] = X[k][j][i+1] + X[k][j][i-1]; }
stencil consume (Y, X) { Y[k][j][i] = X[k][j][i] * 0.5; }
produce (T, A);
consume (B, T);
copyout B;
"""

NO_PINGPONG = """
parameter N=32;
iterator k, j, i;
double A[N,N,N], T[N,N,N], U[N,N,N];
iterate 3;
copyin A, U;
stencil fill (Y, X) { Y[k][j][i] = X[k][j][i]; }
stencil relax (Y) { Y[k][j][i] = Y[k][j][i] * 0.5; }
fill (T, A);
relax (U);
copyout U;
"""

SKEWED = """
parameter N=32;
iterator k, j, i;
double A[N,N,N], T[N,N,N], B[N,N,N];
copyin A;
stencil fill (Y, X) { Y[k][j][i] = X[k][j][i]; }
stencil skew (Y, X) { Y[k][j][i] = X[k-j][j][i]; }
fill (T, A);
skew (B, T);
copyout B;
"""

INDEPENDENT = """
parameter N=64;
iterator k, j, i;
double A[N,N,N], P[N,N,N], Q[N,N,N];
copyin A;
stencil left (Y, X) { Y[k][j][i] = X[k][j][i] + 1.0; }
stencil right (Y, X) { Y[k][j][i] = X[k][j][i] - 1.0; }
left (P, A);
right (Q, A);
copyout P, Q;
"""


class TestRL301IllegalFusion:
    def test_reversed_order_is_refuted_with_live_witness(self):
        ir = ir_of(PRODUCER_CONSUMER)
        plan = KernelPlan(("consume.0", "produce.0"), block=(32, 16))
        findings = certified_errors(ir, plan)
        assert [d.code for d in findings] == ["RL301"]
        assert_live_witness(ir, findings[0])

    def test_refuted_order_actually_diverges_when_executed(self):
        # End to end: the mis-ordered launch computes the wrong answer.
        ir = ir_of(PRODUCER_CONSUMER)
        plan = KernelPlan(("consume.0", "produce.0"), block=(32, 16))
        inputs = allocate_inputs(ir)
        reference = execute_reference(ir, inputs)
        broken = execute_plan(ir, plan, inputs)
        assert not np.array_equal(broken["B"], reference["B"])

    def test_certified_order_matches_reference(self):
        ir = ir_of(PRODUCER_CONSUMER)
        plan = KernelPlan(("produce.0", "consume.0"), block=(32, 16))
        assert certify_plan_transformations(ir, plan) == []
        inputs = allocate_inputs(ir)
        reference = execute_reference(ir, inputs)
        fused = execute_plan(ir, plan, inputs)
        assert np.array_equal(fused["B"], reference["B"])

    def test_interposed_kernel_is_refuted(self):
        ir = ir_of(
            """
            parameter N=64;
            iterator k, j, i;
            double A[N,N,N], T[N,N,N], U[N,N,N], B[N,N,N];
            copyin A;
            stencil step (Y, X) { Y[k][j][i] = X[k][j][i] + 1.0; }
            step (T, A);
            step (U, T);
            step (B, U);
            copyout B;
            """
        )
        plan = KernelPlan(("step.0", "step.2"), block=(32, 16))
        findings = certified_errors(ir, plan)
        assert [d.code for d in findings] == ["RL301"]
        assert "step.1" in findings[0].message
        assert_live_witness(ir, findings[0])

    def test_unknown_kernels_are_not_certified(self):
        # RL204's territory: certification must not guess.
        ir = ir_of(PRODUCER_CONSUMER)
        plan = KernelPlan(("ghost.0", "produce.0"), block=(32, 16))
        assert certify_plan_transformations(ir, plan) == []


class TestRL302IllegalTimeTile:
    def test_multi_kernel_time_tile_is_refuted(self):
        ir = ir_of(ITERATIVE_PAIR)
        plan = KernelPlan(
            ("produce.0", "consume.0"), block=(32, 16), time_tile=2
        )
        findings = certified_errors(ir, plan)
        assert [d.code for d in findings] == ["RL302"]
        assert_live_witness(ir, findings[0])

    def test_kernel_without_pingpong_is_refuted(self):
        ir = ir_of(NO_PINGPONG)
        plan = KernelPlan(("relax.0",), block=(32, 16), time_tile=2)
        findings = certified_errors(ir, plan)
        assert [d.code for d in findings] == ["RL302"]
        assert_live_witness(ir, findings[0])

    def test_priceable_time_tile_is_certified(self, smoother_ir):
        # Anything the pricing model prices, the certifier accepts.
        plan = KernelPlan(
            (smoother_ir.kernels[0].name,), block=(32, 16), time_tile=2
        )
        assert certify_plan_transformations(smoother_ir, plan) == []

    def test_non_iterative_time_tile_is_rl207_territory(self, hypterm_ir):
        plan = KernelPlan(
            (hypterm_ir.kernels[0].name,), block=(32, 16), time_tile=2
        )
        assert certify_plan_transformations(hypterm_ir, plan) == []


class TestRL303IllegalStream:
    def _race_plan(self):
        return KernelPlan(
            ("produce.0", "consume.0"),
            block=(32, 16),
            streaming="concurrent",
            stream_axis=0,
            concurrent_chunks=2,
        )

    def test_chunked_flow_distance_is_refuted(self):
        ir = ir_of(PRODUCER_CONSUMER)
        findings = certified_errors(ir, self._race_plan())
        assert [d.code for d in findings] == ["RL303"]
        assert_live_witness(ir, findings[0])

    def test_witness_sits_on_the_chunk_boundary(self):
        ir = ir_of(PRODUCER_CONSUMER)
        findings = certified_errors(ir, self._race_plan())
        witness = findings[0].witness
        assert witness.point[0] == 64 // 2  # extent // chunks

    def test_zero_distance_flow_streams_clean(self):
        ir = ir_of(ITERATIVE_PAIR)  # consume reads T only at the centre
        plan = KernelPlan(
            ("produce.0", "consume.0"),
            block=(32, 16),
            streaming="concurrent",
            stream_axis=0,
            concurrent_chunks=2,
        )
        assert certify_plan_transformations(ir, plan) == []

    def test_serial_streaming_is_not_refuted(self):
        ir = ir_of(PRODUCER_CONSUMER)
        plan = KernelPlan(
            ("produce.0", "consume.0"),
            block=(32, 16),
            streaming="serial",
            stream_axis=0,
        )
        assert certify_plan_transformations(ir, plan) == []


class TestRL304RetimingViolation:
    def test_skewed_flow_refutes_retiming(self):
        ir = ir_of(SKEWED)
        plan = KernelPlan(
            ("fill.0", "skew.0"),
            block=(32, 16),
            streaming="serial",
            stream_axis=0,
            retime=True,
        )
        findings = certified_errors(ir, plan)
        assert [d.code for d in findings] == ["RL304"]
        assert_live_witness(ir, findings[0])

    def test_uniform_flow_retimes_clean(self):
        ir = ir_of(PRODUCER_CONSUMER)
        plan = KernelPlan(
            ("produce.0", "consume.0"),
            block=(32, 16),
            streaming="serial",
            stream_axis=0,
            retime=True,
        )
        assert certify_plan_transformations(ir, plan) == []


class TestRL305FusionUnprofitable:
    def test_independent_fusion_gets_an_advisory(self):
        ir = ir_of(INDEPENDENT)
        plan = KernelPlan(("left.0", "right.0"), block=(32, 16))
        report = check_plan(ir, plan, P100)
        assert "RL305" in report.codes()
        rl305 = [d for d in report if d.code == "RL305"]
        assert all(d.severity == "info" for d in rl305)
        # Advisories never reject.
        assert plan_rejection(ir, plan, P100) is None

    def test_dependent_fusion_is_silent(self):
        ir = ir_of(PRODUCER_CONSUMER)
        plan = KernelPlan(("produce.0", "consume.0"), block=(32, 16))
        report = check_plan(ir, plan, P100)
        assert "RL305" not in report.codes()


class TestEnginePrescreen:
    def test_evaluator_rejects_with_rule_and_witness_context(self):
        ir = ir_of(PRODUCER_CONSUMER)
        engine = PlanEvaluator(device=P100)
        doomed = KernelPlan(("consume.0", "produce.0"), block=(32, 16))
        with pytest.raises(PlanInfeasible) as excinfo:
            engine.evaluate(ir, doomed)
        assert "[RL301]" in str(excinfo.value)
        assert getattr(excinfo.value, "context", {}).get("rule") == "RL301"
        # The refutation's counterexample rides along in the exception
        # context so batch telemetry can explain the rejection.
        witness = excinfo.value.context.get("witness")
        assert witness is not None and "T" in witness

    def test_lint_rejections_track_screened(self):
        ir = ir_of(PRODUCER_CONSUMER)
        engine = PlanEvaluator(device=P100)
        engine.try_evaluate(
            ir,
            KernelPlan(("consume.0", "produce.0"), block=(32, 16)),
            catch=(PlanInfeasible,),
        )
        assert engine.stats.screened == 1
        assert engine.stats.lint_rejections == engine.stats.screened

    def test_rejection_counter_emitted(self):
        ir = ir_of(PRODUCER_CONSUMER)
        configure_metrics(True, reset=True)
        try:
            engine = PlanEvaluator(device=P100)
            engine.try_evaluate(
                ir,
                KernelPlan(("consume.0", "produce.0"), block=(32, 16)),
                catch=(PlanInfeasible,),
            )
            snap = get_metrics().snapshot()
            assert snap["lint.reject.RL301"]["value"] == 1
        finally:
            configure_metrics(False, reset=True)


class TestCertifierToggle:
    def test_enabled_by_default(self):
        assert certifier_enabled()

    def test_context_manager_restores(self):
        assert certifier_enabled()
        with certification_disabled():
            assert not certifier_enabled()
        assert certifier_enabled()

    def test_set_returns_previous(self):
        assert set_certification_enabled(False) is True
        try:
            assert not certifier_enabled()
        finally:
            assert set_certification_enabled(True) is False

    def test_disabled_certifier_emits_nothing(self):
        ir = ir_of(PRODUCER_CONSUMER)
        plan = KernelPlan(("consume.0", "produce.0"), block=(32, 16))
        with certification_disabled():
            report = check_plan(ir, plan, P100)
        assert "RL301" not in report.codes()
        assert "RL206" in report.codes()


class TestWitnessSerialization:
    def test_diagnostic_dict_and_sarif_carry_the_witness(self):
        from repro.lint import sarif_log

        ir = ir_of(PRODUCER_CONSUMER)
        plan = KernelPlan(("consume.0", "produce.0"), block=(32, 16))
        report = check_plan(ir, plan, P100)
        diag = next(d for d in report if d.code == "RL301")
        payload = diag.as_dict()["witness"]
        assert payload["array"] == "T"
        assert payload["source"] == "produce.0"
        assert payload["kind"] == "flow"
        log = sarif_log([report])
        results = log["runs"][0]["results"]
        certified = [
            r for r in results if r["ruleId"] == "RL301"
        ]
        assert certified
        assert certified[0]["properties"]["witness"]["array"] == "T"

    def test_witness_replay_round_trips_to_dict(self):
        ir = ir_of(PRODUCER_CONSUMER)
        plan = KernelPlan(("consume.0", "produce.0"), block=(32, 16))
        diag = certify_plan_transformations(ir, plan)[0]
        replay = replay_witness(ir, diag.witness)
        payload = replay.as_dict()
        assert payload["diverged"] is True
        assert payload["required_value"] != payload["observed_value"]
