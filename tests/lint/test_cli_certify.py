"""End-to-end tests for the ``repro certify`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.codegen.plan import KernelPlan
from repro.resilience.checkpoint import TuningJournal, plan_to_dict

PROGRAM = """
parameter N=64;
iterator k, j, i;
double A[N,N,N], T[N,N,N], B[N,N,N];
copyin A;
stencil produce (Y, X) { Y[k][j][i] = X[k][j][i+1] + X[k][j][i-1]; }
stencil consume (Y, X) { Y[k][j][i] = X[k+1][j][i] + X[k][j][i]; }
produce (T, A);
consume (B, T);
copyout B;
"""


@pytest.fixture
def spec(tmp_path):
    path = tmp_path / "program.dsl"
    path.write_text(PROGRAM)
    return path


def good_plan():
    return KernelPlan(("produce.0", "consume.0"), block=(32, 16))


def bad_plan():
    return KernelPlan(("consume.0", "produce.0"), block=(32, 16))


class TestExitCodes:
    def test_certified_plan_exits_zero(self, spec, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(plan_to_dict(good_plan())))
        assert main(["certify", str(spec), "--plan", str(plan_file)]) == 0
        out = capsys.readouterr().out
        assert "all transformations certified" in out

    def test_refuted_plan_exits_one(self, spec, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(plan_to_dict(bad_plan())))
        assert main(["certify", str(spec), "--plan", str(plan_file)]) == 1
        out = capsys.readouterr().out
        assert "RL301" in out
        assert "1 refutation(s)" in out

    def test_plan_list_certifies_each(self, spec, tmp_path, capsys):
        plan_file = tmp_path / "plans.json"
        plan_file.write_text(
            json.dumps([plan_to_dict(good_plan()), plan_to_dict(bad_plan())])
        )
        assert main(["certify", str(spec), "--plan", str(plan_file)]) == 1
        assert "2 plan(s)" in capsys.readouterr().out

    def test_default_seed_plans_certify_clean(self, capsys):
        assert main(["certify", "7pt-smoother"]) == 0
        assert "all transformations certified" in capsys.readouterr().out

    def test_whole_suite_certifies_clean(self, capsys):
        assert main(["certify", "--suite"]) == 0
        assert "all transformations certified" in capsys.readouterr().out

    def test_nothing_to_certify_is_usage_error(self, capsys):
        assert main(["certify"]) == 2
        assert "nothing to certify" in capsys.readouterr().err

    def test_malformed_plan_is_usage_error(self, spec, tmp_path, capsys):
        plan_file = tmp_path / "junk.json"
        plan_file.write_text(json.dumps({"block": [32, 16]}))
        assert main(["certify", str(spec), "--plan", str(plan_file)]) == 2
        assert "not a serialized KernelPlan" in capsys.readouterr().err

    def test_missing_plan_file_is_usage_error(self, spec, capsys):
        assert main(["certify", str(spec), "--plan", "/no/such.json"]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestJournalMode:
    def test_journal_plans_are_certified(self, spec, tmp_path, capsys):
        journal_path = tmp_path / "journal.jsonl"
        journal = TuningJournal(str(journal_path), device="P100")
        journal.record_candidate(
            "good", plan_to_dict(good_plan()), time_s=1.0, tflops=1.0
        )
        journal.record_candidate(
            "bad", plan_to_dict(bad_plan()), time_s=2.0, tflops=0.5
        )
        journal.record_candidate("infeasible", None)  # skipped
        journal.close()
        assert (
            main(["certify", str(spec), "--journal", str(journal_path)]) == 1
        )
        out = capsys.readouterr().out
        assert "RL301" in out
        assert "2 plan(s)" in out

    def test_missing_journal_is_usage_error(self, spec, capsys):
        assert main(["certify", str(spec), "--journal", "/no/such"]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestMachineOutput:
    def test_json_carries_the_witness(self, spec, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(plan_to_dict(bad_plan())))
        json_path = tmp_path / "certify.json"
        main(
            [
                "certify", str(spec),
                "--plan", str(plan_file),
                "--json", str(json_path),
            ]
        )
        capsys.readouterr()
        payload = json.loads(json_path.read_text())
        assert payload["totals"]["refutations"] == 1
        diag = payload["artifacts"][0]["diagnostics"][0]
        assert diag["code"] == "RL301"
        assert diag["witness"]["array"] == "T"
        assert diag["witness"]["source"] == "produce.0"

    def test_sarif_is_valid_and_carries_the_witness(
        self, spec, tmp_path, capsys
    ):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(plan_to_dict(bad_plan())))
        sarif_path = tmp_path / "certify.sarif"
        main(
            [
                "certify", str(spec),
                "--plan", str(plan_file),
                "--sarif", str(sarif_path),
            ]
        )
        capsys.readouterr()
        log = json.loads(sarif_path.read_text())
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        refuted = [r for r in results if r["ruleId"] == "RL301"]
        assert refuted
        assert refuted[0]["properties"]["witness"]["array"] == "T"

    def test_clean_run_still_writes_artifacts(self, spec, tmp_path, capsys):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(plan_to_dict(good_plan())))
        json_path = tmp_path / "certify.json"
        assert (
            main(
                [
                    "certify", str(spec),
                    "--plan", str(plan_file),
                    "--json", str(json_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(json_path.read_text())
        assert payload["totals"] == {
            "programs": 1,
            "plans": 1,
            "findings": 0,
            "refutations": 0,
        }


class TestExamplesMode:
    def test_examples_seed_plans_certify_clean(self, capsys):
        assert main(["certify", "--examples", "examples"]) == 0
        assert "all transformations certified" in capsys.readouterr().out
