"""SARIF 2.1.0 emission: required fields, rule metadata, locations."""

import json

from repro.lint import RULES, lint_source, sarif_log, write_sarif
from repro.lint.sarif import SARIF_SCHEMA, SARIF_VERSION, TOOL_NAME

BROKEN = """
parameter N=3;
iterator k, j, i;
double A[N,N,N], B[N,N,N], C[N,N,N];
copyin A;
stencil s (Y, X) { Y[k][j][i] = X[k][j][i+2] + X[k][j][i-1]; }
s (B, A);
copyout B;
"""


def _log():
    return sarif_log([lint_source(BROKEN, artifact="broken.dsl")])


class TestLogStructure:
    def test_required_top_level_fields(self):
        log = _log()
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA
        assert len(log["runs"]) == 1

    def test_tool_driver_lists_full_catalog(self):
        driver = _log()["runs"][0]["tool"]["driver"]
        assert driver["name"] == TOOL_NAME
        assert driver["informationUri"]
        codes = [r["id"] for r in driver["rules"]]
        assert codes == sorted(RULES)
        for entry in driver["rules"]:
            assert entry["shortDescription"]["text"]

    def test_results_reference_rules_by_index(self):
        run = _log()["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert run["results"], "broken program must produce findings"
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            assert result["level"] in ("error", "warning", "note")
            assert result["message"]["text"]

    def test_findings_carry_physical_locations(self):
        run = _log()["runs"][0]
        located = [
            r for r in run["results"] if r.get("locations")
        ]
        assert located, "span-bearing findings must emit locations"
        loc = located[0]["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "broken.dsl"
        region = loc["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_severity_maps_to_sarif_levels(self):
        # error -> error, warning -> warning, info -> note: RL105 is an
        # error and RL106 a warning in the same broken program.
        run = sarif_log(
            [lint_source(BROKEN.replace("copyin A;", "copyin A, C;"))]
        )["runs"][0]
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert levels.get("RL105") == "error"

    def test_multiple_reports_aggregate_into_one_run(self):
        reports = [
            lint_source(BROKEN, artifact="a.dsl"),
            lint_source(BROKEN, artifact="b.dsl"),
        ]
        run = sarif_log(reports)["runs"][0]
        uris = {
            loc["physicalLocation"]["artifactLocation"]["uri"]
            for result in run["results"]
            for loc in result.get("locations", [])
        }
        assert uris == {"a.dsl", "b.dsl"}

    def test_clean_report_yields_empty_results(self):
        from repro.suite import get

        log = sarif_log([lint_source(get("7pt-smoother").dsl())])
        assert log["runs"][0]["results"] == []


class TestWriteSarif:
    def test_round_trips_through_json(self, tmp_path):
        path = tmp_path / "lint.sarif"
        write_sarif([lint_source(BROKEN)], str(path))
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"]
