"""Tests for the polyhedral-lite dependence engine.

The certifier's legality arguments rest entirely on the distance
vectors computed here, so each kind (flow/anti/output), the ``None``
unknown-distance convention, and the derived graphs get direct
adversarial coverage — plus agreement with the fusion DAG
(:func:`repro.ir.dag.kernel_dag`), which the engine's sweep mirrors.
"""

import networkx as nx
import pytest

from repro.dsl import parse
from repro.ir import build_ir
from repro.ir.dag import kernel_dag
from repro.lint import (
    array_flow_graph,
    dependence_graph,
    edges_between,
    kernel_dependences,
)
from repro.lint.dependence import ANTI, FLOW, OUTPUT


def ir_of(src):
    return build_ir(parse(src))


PRODUCER_CONSUMER = """
parameter N=64;
iterator k, j, i;
double A[N,N,N], T[N,N,N], B[N,N,N];
copyin A;
stencil produce (Y, X) { Y[k][j][i] = X[k][j][i+1] + X[k][j][i-1]; }
stencil consume (Y, X) { Y[k][j][i] = X[k+1][j][i] + X[k][j][i]; }
produce (T, A);
consume (B, T);
copyout B;
"""


class TestEdgeKinds:
    def test_flow_distances(self):
        ir = ir_of(PRODUCER_CONSUMER)
        flows = [
            e
            for e in kernel_dependences(ir)
            if e.kind == FLOW and e.array == "T"
        ]
        assert len(flows) == 1
        edge = flows[0]
        assert edge.source == "produce.0" and edge.sink == "consume.0"
        # Writer offset (0,0,0); reads at (1,0,0) and (0,0,0):
        # distances w - r are (-1,0,0) and (0,0,0).
        assert set(edge.distances) == {(-1, 0, 0), (0, 0, 0)}
        assert edge.axis_distances(0) == (-1, 0)
        assert edge.max_known(0) == 0
        assert not edge.has_unknown(0)

    def test_anti_distances(self):
        # read reads A at i+1/i-1, then clobber rewrites A: WAR with
        # distances r - w = (0,0,1) and (0,0,-1).
        ir = ir_of(
            """
            parameter N=64;
            iterator k, j, i;
            double A[N,N,N], B[N,N,N];
            copyin A;
            stencil read (Y, X) { Y[k][j][i] = X[k][j][i+1] + X[k][j][i-1]; }
            stencil clobber (Y, X) { Y[k][j][i] = X[k][j][i] * 2.0; }
            read (B, A);
            clobber (A, B);
            copyout A;
            """
        )
        antis = [e for e in kernel_dependences(ir) if e.kind == ANTI]
        assert len(antis) == 1
        edge = antis[0]
        assert (edge.source, edge.sink) == ("read.0", "clobber.0")
        assert edge.array == "A"
        assert set(edge.distances) == {(0, 0, 1), (0, 0, -1)}

    def test_output_distance(self):
        # Two kernels write B at the centre: WAW distance (0,0,0).
        ir = ir_of(
            """
            parameter N=64;
            iterator k, j, i;
            double A[N,N,N], B[N,N,N];
            copyin A;
            stencil first (Y, X) { Y[k][j][i] = X[k][j][i]; }
            stencil second (Y, X) { Y[k][j][i] = X[k][j][i] + 1.0; }
            first (B, A);
            second (B, A);
            copyout B;
            """
        )
        outputs = [e for e in kernel_dependences(ir) if e.kind == OUTPUT]
        assert len(outputs) == 1
        edge = outputs[0]
        assert (edge.source, edge.sink) == ("first.0", "second.0")
        assert edge.distances == ((0, 0, 0),)

    def test_skewed_read_is_unknown(self):
        # A skewed subscript (k+j) is not iterator-plus-constant along
        # axis 0: the distance component there must come back None while
        # the uniform axes stay exact.
        ir = ir_of(
            """
            parameter N=64;
            iterator k, j, i;
            double A[N,N,N], T[N,N,N], B[N,N,N];
            copyin A;
            stencil fill (Y, X) { Y[k][j][i] = X[k][j][i]; }
            stencil skew (Y, X) { Y[k][j][i] = X[k+j][j][i]; }
            fill (T, A);
            skew (B, T);
            copyout B;
            """
        )
        flows = [
            e
            for e in kernel_dependences(ir)
            if e.kind == FLOW and e.array == "T"
        ]
        assert len(flows) == 1
        edge = flows[0]
        assert edge.distances == ((None, 0, 0),)
        assert edge.has_unknown(0)
        assert edge.max_known(0) is None
        assert not edge.has_unknown(1)


class TestGraphs:
    def test_matches_kernel_dag_structure(self):
        ir = ir_of(PRODUCER_CONSUMER)
        dep = dependence_graph(ir)
        dag = kernel_dag(ir)
        assert set(dep.nodes) == set(dag.nodes)
        assert set(dep.edges) == set(dag.edges)

    def test_matches_kernel_dag_on_suite(self, smoother_ir, hypterm_ir):
        for ir in (smoother_ir, hypterm_ir):
            dep = dependence_graph(ir)
            dag = kernel_dag(ir)
            assert set(dep.nodes) == set(dag.nodes)
            assert set(dep.edges) == set(dag.edges)

    def test_edge_data_carries_edges(self):
        ir = ir_of(PRODUCER_CONSUMER)
        graph = dependence_graph(ir)
        edges = graph["produce.0"]["consume.0"]["edges"]
        assert all(e.source == "produce.0" for e in edges)
        assert any(e.kind == FLOW for e in edges)

    def test_edges_between_filters(self):
        ir = ir_of(PRODUCER_CONSUMER)
        both = edges_between(ir, ("produce.0", "consume.0"))
        assert both and all(
            e.source in ("produce.0", "consume.0")
            and e.sink in ("produce.0", "consume.0")
            for e in both
        )
        assert edges_between(ir, ("produce.0",)) == ()

    def test_deterministic_and_memoized(self):
        ir = ir_of(PRODUCER_CONSUMER)
        first = kernel_dependences(ir)
        assert kernel_dependences(ir) is first
        rebuilt = kernel_dependences(ir_of(PRODUCER_CONSUMER))
        assert rebuilt == first


THREE_KERNEL_CHAIN = """
parameter N=64;
iterator k, j, i;
double A[N,N,N], T[N,N,N], U[N,N,N], B[N,N,N];
copyin A;
stencil step (Y, X) { Y[k][j][i] = X[k][j][i] + 1.0; }
step (T, A);
step (U, T);
step (B, U);
copyout B;
"""


class TestInterposedKernels:
    def test_excluded_middle_kernel_is_reported(self):
        from repro.lint.dependence import interposed_kernels

        ir = ir_of(THREE_KERNEL_CHAIN)
        chains = interposed_kernels(ir, ("step.0", "step.2"))
        assert chains == (("step.0", "step.1", "step.2"),)

    def test_adjacent_pair_is_clean(self):
        from repro.lint.dependence import interposed_kernels

        ir = ir_of(THREE_KERNEL_CHAIN)
        assert interposed_kernels(ir, ("step.0", "step.1")) == ()
        assert interposed_kernels(ir, ("step.1", "step.2")) == ()


class TestArrayFlowGraph:
    def test_exclusive_in_place_writer_adds_no_cycle(self):
        # up += ... (SW4 idiom): the accumulator's self-read must not
        # produce a cycle when no other kernel writes it.
        ir = ir_of(
            """
            parameter N=64;
            iterator k, j, i;
            double A[N,N,N], U[N,N,N];
            copyin A, U;
            stencil acc (Y, X) { Y[k][j][i] += X[k][j][i]; }
            acc (U, A);
            copyout U;
            """
        )
        graph = array_flow_graph(ir)
        with pytest.raises(nx.NetworkXNoCycle):
            nx.find_cycle(graph)

    def test_shared_writer_read_edge_is_kept(self):
        # RL104 regression: k1 reads X and writes {X, Y}; k2 reads Y and
        # writes X.  X is *not* exclusively k1's, so the X -> Y edge must
        # survive and close the cycle X -> Y -> X.
        ir = ir_of(
            """
            parameter N=64;
            iterator k, j, i;
            double X[N,N,N], Y[N,N,N];
            copyin X;
            stencil fwd (P, Q, S) { P[k][j][i] = S[k][j][i] + 1.0;
                                    Q[k][j][i] = S[k][j][i] * 2.0; }
            stencil back (P, S) { P[k][j][i] = S[k][j][i] - 1.0; }
            fwd (X, Y, X);
            back (X, Y);
            copyout X;
            """
        )
        graph = array_flow_graph(ir)
        cycle = nx.find_cycle(graph)
        nodes = {edge[0] for edge in cycle}
        assert nodes == {"X", "Y"}

    def test_no_self_edges(self, smoother_ir):
        graph = array_flow_graph(smoother_ir)
        assert not any(u == v for u, v in graph.edges)
