"""Every rule stays silent on all shipped programs.

The acceptance criterion for the rule catalog: each rule fires on its
minimal repro (tests/lint/test_rules_program.py, test_rules_plan.py)
AND stays silent on every suite benchmark and every DSL block shipped
under ``examples/`` — otherwise a lint gate in CI would block clean
code.
"""

import os

import pytest

from repro.lint import extract_dsl_blocks, lint_source
from repro.suite import BENCHMARKS, get

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_suite_benchmark_is_clean(name):
    report = lint_source(get(name).dsl(), artifact=name)
    assert not report, report.render()


def _example_blocks():
    cases = []
    for entry in sorted(os.listdir(EXAMPLES_DIR)):
        if not entry.endswith(".py"):
            continue
        path = os.path.join(EXAMPLES_DIR, entry)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        for start_line, block in extract_dsl_blocks(text):
            cases.append(pytest.param(entry, start_line, block, id=f"{entry}:{start_line}"))
    return cases


@pytest.mark.parametrize("entry,start_line,block", _example_blocks())
def test_example_block_is_clean(entry, start_line, block):
    report = lint_source(block, artifact=f"{entry}:{start_line}")
    assert not report, report.render()


def test_examples_actually_contain_dsl_blocks():
    # Guard against the extractor silently matching nothing — the
    # shipped quickstart keeps its specification in a triple-quoted
    # string precisely so `repro lint --examples` covers it.
    assert len(_example_blocks()) >= 1


class TestExtractDslBlocks:
    def test_finds_double_and_single_quoted_blocks(self):
        text = (
            'SPEC = """\niterator k, j, i;\nstencil s (A) '
            '{ A[k][j][i] = 1.0; }\ncopyout A;\n"""\n'
            "OTHER = '''\niterator k, j, i;\nstencil t (B) "
            "{ B[k][j][i] = 2.0; }\ncopyout B;\n'''\n"
        )
        blocks = extract_dsl_blocks(text)
        assert len(blocks) == 2
        assert blocks[0][0] == 1  # 1-based start line
        assert "stencil s" in blocks[0][1]
        assert "stencil t" in blocks[1][1]

    def test_ignores_docstrings(self):
        text = '"""A docstring mentioning stencil codes, not defining one."""\n'
        assert extract_dsl_blocks(text) == []

    def test_requires_all_three_markers(self):
        # An iterator declaration alone is not a program.
        text = '"""\niterator k, j, i;\n"""\n'
        assert extract_dsl_blocks(text) == []
