"""Property tests: ill-formed programs never pass lint silently.

A generator perturbs a known-clean template with one randomly chosen,
randomly parameterized corruption; the property is that ``lint_source``
(a) never raises and (b) always reports at least one finding, with
error-class corruptions producing error severity.
"""

from hypothesis import given, settings, strategies as st

from repro.lint import lint_source

TEMPLATE = """
parameter N={extent};
iterator k, j, i;
double A[N,N,N], B[N,N,N];
copyin {copyin};
{pragma}stencil s (Y, X) {{ Y[k][j][i] = {rhs}; }}
s (B, A);
copyout B;
"""


def render(extent=64, copyin="A", pragma="", rhs="X[k][j][i+1] + X[k][j][i-1]"):
    return TEMPLATE.format(
        extent=extent, copyin=copyin, pragma=pragma, rhs=rhs
    )


BOGUS_NAMES = st.sampled_from(["w", "q", "zz", "kk", "foo"])


@st.composite
def corrupted_programs(draw):
    """(source, expect_error) pairs covering every corruption class."""
    kind = draw(
        st.sampled_from(
            [
                "zero_extent",
                "stream_unknown",
                "unroll_unknown",
                "unroll_stream",
                "halo_overflow",
                "copyin_unknown",
                "unknown_call",
                "garbage",
                "in_place_race",
                "uninitialized",
            ]
        )
    )
    if kind == "zero_extent":
        return render(extent=draw(st.integers(-4, 0))), True
    if kind == "stream_unknown":
        name = draw(BOGUS_NAMES)
        return render(pragma=f"#pragma stream {name} block (32,16)\n"), True
    if kind == "unroll_unknown":
        name = draw(BOGUS_NAMES)
        pragma = f"#pragma stream k block (32,16) unroll {name}=2\n"
        return render(pragma=pragma), True
    if kind == "unroll_stream":
        factor = draw(st.integers(2, 8))
        pragma = f"#pragma stream k block (32,16) unroll k={factor}\n"
        return render(pragma=pragma), True
    if kind == "halo_overflow":
        # The template's -1/+1 halo needs extent > 2 to stay in bounds.
        return render(extent=draw(st.integers(1, 2))), True
    if kind == "copyin_unknown":
        return render(copyin=f"A, {draw(BOGUS_NAMES)}"), True
    if kind == "unknown_call":
        return render().replace("s (B, A);", "t (B, A);"), True
    if kind == "garbage":
        prefix = draw(st.sampled_from(["!!!", "stencil {", "42;", ")"]))
        return prefix + "\n" + render(), True
    if kind == "in_place_race":
        offset = draw(st.integers(1, 3))
        src = render(rhs=f"X[k][j][i+{offset}]").replace("s (B, A);", "s (A, A);")
        return src, True
    # uninitialized: nothing copied in, single sweep -> warning only.
    return render().replace("copyin A;", "copyin B;"), False


@given(corrupted_programs())
@settings(max_examples=80, deadline=None)
def test_corrupted_programs_never_pass_silently(case):
    source, expect_error = case
    report = lint_source(source)
    assert len(report) > 0, f"lint passed a corrupted program:\n{source}"
    if expect_error:
        assert report.has_errors, (
            f"corruption demoted to non-error:\n{source}\n{report.render()}"
        )


@given(st.text(max_size=200))
@settings(max_examples=60, deadline=None)
def test_lint_source_never_raises_on_arbitrary_text(text):
    lint_source(text)  # must not raise, whatever the input


@given(st.integers(4, 128).filter(lambda n: n % 4 == 0))
@settings(max_examples=20, deadline=None)
def test_clean_template_stays_clean_across_extents(extent):
    # The dual property: the generator's baseline really is clean, so a
    # finding in the corrupted case is attributable to the corruption.
    assert not lint_source(render(extent=extent))
