"""Committed golden winners must certify clean.

The per-device golden winners (``tests/gpu/golden_winners.json``) are
the plans the repo promises the tuner finds; if the transformation
certifier refuted any of them, either the winner or the certifier
would be wrong.  This is the pytest half of CI's certification gate —
the CLI half (``repro certify --suite --examples examples``) covers
the seed plans.
"""

import json
import os

import pytest

from repro.gpu.device import DEVICES, get_device
from repro.lint import (
    certify_plan_transformations,
    check_plan,
    plan_rejection,
)

from tests.gpu.test_pricing import IR, PROTOS

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "gpu", "golden_winners.json"
)


def golden_plans():
    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)
    for device_name in sorted(golden):
        entry = golden[device_name]
        yield device_name, PROTOS["serial-shm"].replace(
            block=tuple(entry["block"]),
            unroll=tuple(entry["unroll"]),
            max_registers=entry["max_registers"],
        )


@pytest.mark.parametrize(
    "device_name,plan",
    list(golden_plans()),
    ids=[name for name, _ in golden_plans()],
)
class TestGoldenWinnersCertify:
    def test_certifier_accepts(self, device_name, plan):
        assert certify_plan_transformations(IR, plan) == []

    def test_full_lint_report_has_no_refutation(self, device_name, plan):
        report = check_plan(IR, plan, get_device(device_name))
        assert not [d for d in report if d.code.startswith("RL3")]

    def test_engine_prescreen_does_not_reject(self, device_name, plan):
        # The winner must survive the exact prescreen the engine runs —
        # a rejection here would mean the committed winner can no
        # longer be re-found.
        assert plan_rejection(IR, plan, get_device(device_name)) is None


def test_golden_file_covers_every_registered_device():
    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)
    assert set(golden) == set(DEVICES)
