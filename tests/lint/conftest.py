"""Shared fixtures for the lint test suite."""

import pytest

from repro.suite import get


@pytest.fixture(scope="session")
def smoother_ir():
    return get("7pt-smoother").ir()


@pytest.fixture(scope="session")
def hypterm_ir():
    return get("hypterm").ir()


@pytest.fixture(scope="session")
def rhs4sgcurv_ir():
    return get("rhs4sgcurv").ir()
