"""Adversarial tests for the plan rules (RL2xx).

``check_plan`` runs the full catalog; ``plan_rejection`` is the
evaluation engine's prescreen and must honour the identity contract —
it may only reject plans the direct ``validate_plan`` + ``simulate``
path also refuses (structural RL204/RL206 plus the occupancy rules),
never the catalog-only shape rules (RL207/RL209) or advisories.
"""

import pytest

from repro.codegen.plan import KernelPlan
from repro.dsl import parse
from repro.gpu.device import P100
from repro.ir import build_ir
from repro.lint import check_plan, classify_occupancy_failure, plan_rejection


def single_kernel_plan(ir, **kwargs):
    return KernelPlan((ir.kernels[0].name,), **kwargs)


class TestRL201ShmemCapacity:
    def test_oversized_shmem_tile_fires(self, smoother_ir):
        plan = single_kernel_plan(
            smoother_ir,
            block=(32, 32),
            unroll=(1, 4, 4),
            placements=(("in", "shmem"),),
        )
        report = check_plan(smoother_ir, plan, P100)
        assert "RL201" in report.codes()
        assert report.has_errors

    def test_engine_rejects_it_too(self, smoother_ir):
        plan = single_kernel_plan(
            smoother_ir,
            block=(32, 32),
            unroll=(1, 4, 4),
            placements=(("in", "shmem"),),
        )
        rejection = plan_rejection(smoother_ir, plan, P100)
        assert rejection is not None and rejection.code == "RL201"


class TestRL202ThreadLimit:
    def test_block_over_device_limit_fires(self, smoother_ir):
        plan = single_kernel_plan(smoother_ir, block=(64, 64))
        report = check_plan(smoother_ir, plan, P100)
        assert "RL202" in report.codes()
        rejection = plan_rejection(smoother_ir, plan, P100)
        assert rejection is not None and rejection.code == "RL202"


class TestRL203RegisterFile:
    def test_register_hungry_kernel_fires(self, rhs4sgcurv_ir):
        plan = single_kernel_plan(rhs4sgcurv_ir, block=(32, 32))
        report = check_plan(rhs4sgcurv_ir, plan, P100)
        assert "RL203" in report.codes()
        rejection = plan_rejection(rhs4sgcurv_ir, plan, P100)
        assert rejection is not None and rejection.code == "RL203"


class TestRL204PlanInvalid:
    def test_unknown_kernel_fires(self, smoother_ir):
        plan = KernelPlan(("no-such-kernel",), block=(32, 16))
        report = check_plan(smoother_ir, plan, P100)
        assert report.codes() == ("RL204",)
        rejection = plan_rejection(
            smoother_ir, plan, P100, assume_validated=False
        )
        assert rejection is not None and rejection.code == "RL204"


class TestRL205Overtile:
    def _overtiled(self, ir):
        # Streaming along k leaves (j, i) tiled; 128 threads x 8 unroll
        # is a 1024-point tile on the 512-point innermost axis.  This is
        # the shape the hierarchical tuner actually wins with, so it
        # must stay feasible (the model prices overtiled plans).
        return single_kernel_plan(
            ir,
            block=(4, 128),
            streaming="serial",
            stream_axis=0,
            unroll=(1, 1, 8),
        )

    def test_tile_past_domain_warns(self, smoother_ir):
        report = check_plan(smoother_ir, self._overtiled(smoother_ir), P100)
        assert "RL205" in report.codes()
        assert not report.has_errors

    def test_advisories_never_reject(self, smoother_ir):
        plan = self._overtiled(smoother_ir)
        assert plan_rejection(smoother_ir, plan, P100) is None


TWO_KERNEL_SRC = """
parameter N=256;
iterator k, j, i;
double A[N,N,N], T[N,N,N], B[N,N,N];
copyin A;
stencil produce (Y, X) { Y[k][j][i] = X[k][j][i+1] + X[k][j][i-1]; }
stencil consume (Y, X) { Y[k][j][i] = X[k+1][j][i] + X[k][j][i]; }
produce (T, A);
consume (B, T);
copyout B;
"""


@pytest.fixture(scope="module")
def two_kernel_ir():
    return build_ir(parse(TWO_KERNEL_SRC))


class TestRL206FusionOrder:
    def test_consumer_before_producer_fires_as_rl301(self, two_kernel_ir):
        # With the dependence certifier on (the default), the order
        # violation is a certified RL301 refutation with a witness.
        names = tuple(k.name for k in two_kernel_ir.kernels)
        plan = KernelPlan(tuple(reversed(names)), block=(32, 16))
        report = check_plan(two_kernel_ir, plan, P100)
        assert "RL301" in report.codes()
        rejection = plan_rejection(two_kernel_ir, plan, P100)
        assert rejection is not None and rejection.code == "RL301"
        assert rejection.witness is not None

    def test_legacy_mode_fires_rl206(self, two_kernel_ir):
        # Structural rule defers to the certifier; with it off the
        # legacy DAG-direction check still rejects under its old code.
        from repro.lint import certification_disabled

        names = tuple(k.name for k in two_kernel_ir.kernels)
        plan = KernelPlan(tuple(reversed(names)), block=(32, 16))
        with certification_disabled():
            report = check_plan(two_kernel_ir, plan, P100)
            assert "RL206" in report.codes()
            rejection = plan_rejection(two_kernel_ir, plan, P100)
        assert rejection is not None and rejection.code == "RL206"

    def test_legacy_mode_is_distance_aware(self, two_kernel_ir):
        # Satellite fix: a DAG-consistent fusion that chunk-races the
        # k-axis flow distance (-1) under concurrent streaming is now
        # flagged by legacy RL206 too, not just by the certifier.
        from repro.lint import certification_disabled

        names = tuple(k.name for k in two_kernel_ir.kernels)
        plan = KernelPlan(
            names,
            block=(32, 16),
            streaming="concurrent",
            stream_axis=0,
            concurrent_chunks=2,
        )
        with certification_disabled():
            report = check_plan(two_kernel_ir, plan, P100)
        assert "RL206" in report.codes()

    def test_dag_order_is_clean(self, two_kernel_ir):
        names = tuple(k.name for k in two_kernel_ir.kernels)
        plan = KernelPlan(names, block=(32, 16))
        report = check_plan(two_kernel_ir, plan, P100)
        assert "RL206" not in report.codes()
        assert "RL301" not in report.codes()


class TestRL207TimeTileNonIterative:
    def test_time_tiling_a_single_sweep_fires(self, hypterm_ir):
        plan = single_kernel_plan(hypterm_ir, block=(32, 16), time_tile=2)
        report = check_plan(hypterm_ir, plan, P100)
        assert "RL207" in report.codes()

    def test_catalog_only_engine_accepts(self, hypterm_ir):
        # Identity contract: the pricing model prices this shape, so the
        # engine prescreen must not reject it.
        plan = single_kernel_plan(hypterm_ir, block=(32, 16), time_tile=2)
        rejection = plan_rejection(hypterm_ir, plan, P100)
        assert rejection is None or rejection.code != "RL207"

    def test_time_tiling_an_iterative_program_is_clean(self, smoother_ir):
        plan = single_kernel_plan(smoother_ir, block=(32, 16), time_tile=2)
        report = check_plan(smoother_ir, plan, P100)
        assert "RL207" not in report.codes()


class TestRL208UnrollIndivisible:
    def test_remainder_tile_warns(self, smoother_ir):
        # 32 threads x 3 unroll = 96, which does not divide 512.
        plan = single_kernel_plan(
            smoother_ir, block=(32, 16), unroll=(1, 1, 3)
        )
        report = check_plan(smoother_ir, plan, P100)
        assert "RL208" in report.codes()
        assert plan_rejection(smoother_ir, plan, P100) is None

    def test_divisible_tile_is_clean(self, smoother_ir):
        plan = single_kernel_plan(
            smoother_ir, block=(32, 16), unroll=(1, 1, 4)
        )
        assert "RL208" not in check_plan(smoother_ir, plan, P100).codes()


class TestRL209StreamAxisUnroll:
    def test_unrolled_sweep_axis_fires(self, smoother_ir):
        plan = single_kernel_plan(
            smoother_ir,
            block=(32, 16),
            streaming="serial",
            stream_axis=0,
            unroll=(2, 1, 1),
        )
        report = check_plan(smoother_ir, plan, P100)
        assert "RL209" in report.codes()

    def test_catalog_only_engine_accepts(self, smoother_ir):
        plan = single_kernel_plan(
            smoother_ir,
            block=(32, 16),
            streaming="serial",
            stream_axis=0,
            unroll=(2, 1, 1),
        )
        rejection = plan_rejection(smoother_ir, plan, P100)
        assert rejection is None or rejection.code != "RL209"


class TestRL210StreamLookahead:
    def test_fused_consumer_reading_ahead_notes(self, two_kernel_ir):
        names = tuple(k.name for k in two_kernel_ir.kernels)
        plan = KernelPlan(
            names, block=(32, 16), streaming="serial", stream_axis=0
        )
        report = check_plan(two_kernel_ir, plan, P100)
        assert "RL210" in report.codes()
        # Info only: never rejects.
        assert not any(d.severity == "error" for d in report if d.code == "RL210")

    def test_unfused_plan_has_no_lookahead(self, two_kernel_ir):
        plan = KernelPlan(
            (two_kernel_ir.kernels[0].name,),
            block=(32, 16),
            streaming="serial",
            stream_axis=0,
        )
        assert "RL210" not in check_plan(two_kernel_ir, plan, P100).codes()


class TestClassifyOccupancyFailure:
    class _Err(Exception):
        def __init__(self, context=None):
            super().__init__("boom")
            self.context = context or {}

    def test_thread_context(self):
        assert classify_occupancy_failure(self._Err({"threads": 4096})) == "RL202"

    def test_shmem_context(self):
        exc = self._Err({"shmem_bytes": 1 << 20})
        assert classify_occupancy_failure(exc) == "RL201"

    def test_register_context(self):
        exc = self._Err({"registers": 400})
        assert classify_occupancy_failure(exc) == "RL203"

    def test_limiter_shmem(self):
        assert classify_occupancy_failure(self._Err({"limiter": "shmem"})) == "RL201"

    def test_limiter_registers(self):
        exc = self._Err({"limiter": "registers"})
        assert classify_occupancy_failure(exc) == "RL203"

    def test_wrapped_cause_context(self):
        outer = RuntimeError("wrapper")
        outer.__cause__ = self._Err({"shmem_bytes": 99})
        assert classify_occupancy_failure(outer) == "RL201"

    def test_unknown_defaults_to_geometry(self):
        assert classify_occupancy_failure(RuntimeError("???")) == "RL202"

    def test_every_plan_code_is_registered(self):
        from repro.lint import RULES

        for code in ("RL201", "RL202", "RL203"):
            assert code in RULES


class TestPlanReportShape:
    def test_artifact_names_the_kernels(self, smoother_ir):
        plan = single_kernel_plan(smoother_ir, block=(64, 64))
        report = check_plan(smoother_ir, plan, P100)
        assert report.artifact.startswith("plan(")
        for d in report:
            assert d.artifact == report.artifact

    def test_clean_plan_is_silent(self, smoother_ir):
        plan = single_kernel_plan(smoother_ir, block=(32, 16))
        report = check_plan(smoother_ir, plan, P100)
        assert report.codes() == ()
        assert plan_rejection(smoother_ir, plan, P100) is None
