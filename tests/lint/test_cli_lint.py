"""End-to-end tests for the ``repro lint`` subcommand."""

import json

import pytest

from repro.cli import main

BROKEN = """
parameter N=3;
iterator k, j, i;
double A[N,N,N], B[N,N,N], C[N,N,N];
copyin A;
stencil s (Y, X) { Y[k][j][i] = X[k][j][i+2] + X[k][j][i-1]; }
s (B, A);
copyout B;
"""

WARN_ONLY = """
parameter N=64;
iterator k, j, i;
double A[N,N,N], B[N,N,N], C[N,N,N];
copyin A;
stencil s (Y, X) { Y[k][j][i] = X[k][j][i+1] + X[k][j][i-1]; }
s (B, A);
copyout B;
"""


class TestExitCodes:
    def test_clean_benchmark_exits_zero(self, capsys):
        assert main(["lint", "7pt-smoother"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_error_findings_exit_one(self, tmp_path, capsys):
        spec = tmp_path / "broken.dsl"
        spec.write_text(BROKEN)
        assert main(["lint", str(spec)]) == 1
        out = capsys.readouterr().out
        assert "RL105" in out
        assert f"{spec}:" in out  # rendered findings carry the artifact

    def test_warnings_alone_exit_zero(self, tmp_path, capsys):
        spec = tmp_path / "warn.dsl"
        spec.write_text(WARN_ONLY)
        assert main(["lint", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "RL106" in out and "1 warning(s)" in out

    def test_whole_suite_is_clean(self, capsys):
        assert main(["lint", "--suite"]) == 0
        out = capsys.readouterr().out
        assert "11 artifact(s), 0 finding(s)" in out

    def test_nothing_to_lint_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_unknown_spec_is_usage_error(self, capsys):
        assert main(["lint", "no-such-benchmark"]) == 2
        assert "neither a built-in benchmark" in capsys.readouterr().err


class TestArtifacts:
    def test_sarif_written(self, tmp_path, capsys):
        spec = tmp_path / "broken.dsl"
        spec.write_text(BROKEN)
        sarif = tmp_path / "lint.sarif"
        assert main(["lint", str(spec), "--sarif", str(sarif)]) == 1
        document = json.loads(sarif.read_text())
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"]

    def test_json_written(self, tmp_path, capsys):
        spec = tmp_path / "broken.dsl"
        spec.write_text(BROKEN)
        out = tmp_path / "lint.json"
        assert main(["lint", str(spec), "--json", str(out)]) == 1
        document = json.loads(out.read_text())
        assert document["totals"]["artifacts"] == 1
        assert document["totals"]["errors"] >= 1
        assert document["artifacts"][0]["diagnostics"]

    def test_python_file_blocks_extracted(self, tmp_path, capsys):
        py = tmp_path / "example.py"
        py.write_text(f'SPEC = """{BROKEN}"""\n')
        assert main(["lint", str(py)]) == 1
        out = capsys.readouterr().out
        assert "RL105" in out

    def test_examples_dir_lints_clean(self, capsys):
        assert main(["lint", "--examples", "examples"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
