"""Lint rules wired into the evaluation engine, tuners and metrics.

The PlanEvaluator consults ``plan_rejection`` before pricing a
candidate: every screened rejection carries a stable RLxxx code (in the
exception message, the ``rule`` field and the ``lint.reject.*``
counters), and ``EvalStats.lint_rejections`` tracks ``screened``
exactly.  Overtile pruning (RL205) is a separate, opt-in tuner knob.
"""

import pytest

from repro.codegen.plan import KernelPlan
from repro.gpu.device import P100
from repro.gpu.simulator import PlanInfeasible
from repro.obs import configure_metrics, get_metrics
from repro.tuning import HierarchicalTuner, PlanEvaluator
from repro.tuning.space import prune_overtiled


def kernel_of(ir):
    return ir.kernels[0].name


class TestEvaluatorPrescreen:
    def test_rejection_carries_rule_code(self, smoother_ir):
        engine = PlanEvaluator(device=P100)
        doomed = KernelPlan((kernel_of(smoother_ir),), block=(64, 64))
        with pytest.raises(PlanInfeasible) as excinfo:
            engine.evaluate(smoother_ir, doomed)
        assert "[RL202]" in str(excinfo.value)
        assert getattr(excinfo.value, "context", {}).get("rule") == "RL202"

    def test_lint_rejections_track_screened(self, smoother_ir):
        engine = PlanEvaluator(device=P100)
        kernel = kernel_of(smoother_ir)
        plans = [
            KernelPlan((kernel,), block=(64, 64)),  # RL202
            KernelPlan((kernel,), block=(32, 16)),  # feasible
            KernelPlan(
                (kernel,),
                block=(32, 32),
                unroll=(1, 4, 4),
                placements=(("in", "shmem"),),
            ),  # RL201
        ]
        for plan in plans:
            engine.try_evaluate(smoother_ir, plan, catch=(PlanInfeasible,))
        assert engine.stats.screened == 2
        assert engine.stats.lint_rejections == engine.stats.screened

    def test_stats_survive_snapshot_roundtrip(self, smoother_ir):
        engine = PlanEvaluator(device=P100)
        engine.try_evaluate(
            smoother_ir,
            KernelPlan((kernel_of(smoother_ir),), block=(64, 64)),
            catch=(PlanInfeasible,),
        )
        assert engine.stats.as_dict()["lint_rejections"] == 1
        assert "lint rule" in engine.stats.describe()

    def test_prescreen_off_still_rejects_via_model(self, smoother_ir):
        # With the prescreen disabled the occupancy arithmetic itself
        # refuses the plan — same outcome, no rule counter.
        engine = PlanEvaluator(device=P100, prescreen=False)
        doomed = KernelPlan((kernel_of(smoother_ir),), block=(64, 64))
        with pytest.raises(PlanInfeasible):
            engine.evaluate(smoother_ir, doomed)
        assert engine.stats.lint_rejections == 0

    def test_rejection_counter_emitted(self, smoother_ir):
        configure_metrics(True, reset=True)
        try:
            engine = PlanEvaluator(device=P100)
            engine.try_evaluate(
                smoother_ir,
                KernelPlan((kernel_of(smoother_ir),), block=(64, 64)),
                catch=(PlanInfeasible,),
            )
            snap = get_metrics().snapshot()
            assert snap["lint.reject.RL202"]["value"] == 1
        finally:
            configure_metrics(False, reset=True)


class TestPruneOvertiled:
    def _plans(self, ir):
        kernel = kernel_of(ir)
        fits = KernelPlan(
            (kernel,), block=(4, 128), streaming="serial", stream_axis=0
        )
        overtiled = fits.replace(unroll=(1, 1, 8))  # 1024-point tile on 512
        return fits, overtiled

    def test_drops_overtiled_keeps_fitting(self, smoother_ir):
        fits, overtiled = self._plans(smoother_ir)
        kept = prune_overtiled(smoother_ir, [fits, overtiled])
        assert kept == [fits]

    def test_all_overtiled_falls_back_unpruned(self, smoother_ir):
        _, overtiled = self._plans(smoother_ir)
        kept = prune_overtiled(smoother_ir, [overtiled])
        assert kept == [overtiled]

    def test_prune_emits_counter(self, smoother_ir):
        fits, overtiled = self._plans(smoother_ir)
        configure_metrics(True, reset=True)
        try:
            prune_overtiled(smoother_ir, [fits, overtiled])
            snap = get_metrics().snapshot()
            assert snap["lint.prune.overtile"]["value"] == 1
        finally:
            configure_metrics(False, reset=True)

    def test_tuner_exposes_opt_in_knob(self, smoother_ir):
        # Off by default: pruning trades model fidelity (the analytical
        # model prices overtiled plans as first-class, and they can win)
        # for saved simulations, so it must be explicit.
        assert HierarchicalTuner(smoother_ir).lint_prune is False
        assert (
            HierarchicalTuner(smoother_ir, lint_prune=True).lint_prune is True
        )


class TestSimulatorRouting:
    def test_occupancy_prescreen_counts_rule_code(self, smoother_ir):
        from repro.gpu.simulator import plan_occupancy

        configure_metrics(True, reset=True)
        try:
            with pytest.raises(PlanInfeasible):
                plan_occupancy(
                    smoother_ir,
                    KernelPlan((kernel_of(smoother_ir),), block=(64, 64)),
                    P100,
                )
            snap = get_metrics().snapshot()
            assert snap["simulate.prescreen_rejections"]["value"] == 1
            assert snap["lint.reject.RL202"]["value"] == 1
        finally:
            configure_metrics(False, reset=True)


class TestHtmlReportSection:
    def test_lint_rejections_rendered(self):
        from repro.obs.report_html import render_html

        events = [
            {
                "kind": "candidate",
                "disposition": "rejected",
                "reason": "[RL202] block of 4096 threads",
            },
            {
                "kind": "candidate",
                "disposition": "rejected",
                "reason": "[RL202] block of 2048 threads",
            },
            {"kind": "prune", "reason": "lint.RL205", "dropped": 3, "kept": 9},
        ]
        html = render_html(events)
        assert "Lint rejections" in html
        assert "RL202" in html and "RL205" in html
