"""Tests for the simulated profiler and code differencing."""

import pytest

from repro.codegen import KernelPlan
from repro.dsl import parse
from repro.gpu import P100
from repro.ir import build_ir
from repro.profiling import (
    METRIC_NAMES,
    differencing_test,
    profile,
    profile_many,
)

SRC = """
parameter L=256, M=256, N=256;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a;
copyin in, a;
iterate 12;
stencil s (B, A, a) {
  B[k][j][i] = a * (A[k][j][i+1] + A[k][j][i-1] + A[k+1][j][i]
    + A[k-1][j][i]);
}
s (out, in, a);
copyout out;
"""


@pytest.fixture
def setup():
    ir = build_ir(parse(SRC))
    plan = KernelPlan(
        kernel_names=("s.0",),
        block=(32, 16),
        streaming="serial",
        stream_axis=0,
        placements=(("in", "shmem"),),
    )
    return ir, plan


class TestProfile:
    def test_all_metrics_present(self, setup):
        ir, plan = setup
        report = profile(ir, plan)
        assert set(report.metrics) == set(METRIC_NAMES)

    def test_metrics_consistent_with_simulation(self, setup):
        ir, plan = setup
        report = profile(ir, plan)
        assert report.metrics["flop_count_dp"] == report.result.counters.flops
        assert report.elapsed_ms == report.result.time_ms
        assert report.tflops > 0

    def test_oi_accessors(self, setup):
        ir, plan = setup
        report = profile(ir, plan)
        for level in ("dram", "tex", "shm"):
            assert report.oi(level) > 0

    def test_profile_many(self, setup):
        ir, plan = setup
        reports = profile_many(ir, (plan, plan.replace(block=(16, 16))))
        assert len(reports) == 2
        assert reports[0].plan != reports[1].plan


class TestDifferencing:
    def test_dram_bound_kernel_detected(self, setup):
        ir, plan = setup
        verdict = differencing_test(ir, plan, "dram")
        # The 5-point smoother at time_tile=1 is DRAM bandwidth-bound:
        # collapsing DRAM traffic must speed it up.
        assert verdict.bound
        assert verdict.speedup > 1.1

    def test_non_bound_level_not_flagged(self, setup):
        ir, plan = setup
        # A global-memory version has no shared traffic at all, so
        # collapsing it cannot speed anything up.
        gmem_plan = plan.replace(placements=())
        verdict = differencing_test(ir, gmem_plan, "shm")
        assert not verdict.bound

    def test_unknown_level_rejected(self, setup):
        ir, plan = setup
        with pytest.raises(ValueError):
            differencing_test(ir, plan, "l9")

    def test_reduced_version_is_faster_or_equal(self, setup):
        ir, plan = setup
        for level in ("dram", "tex", "shm"):
            verdict = differencing_test(ir, plan, level)
            assert verdict.reduced_time_s <= verdict.base_time_s + 1e-12
