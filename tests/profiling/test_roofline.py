"""Tests for roofline classification."""

import pytest

from repro.codegen import KernelPlan
from repro.dsl import parse
from repro.gpu import P100, simulate
from repro.ir import build_ir
from repro.profiling import (
    AMBIGUOUS,
    BANDWIDTH_BOUND,
    COMPUTE_BOUND,
    classify,
    classify_level,
    classify_result,
    oi_table,
)

JACOBI = """
parameter L=512, M=512, N=512;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a;
copyin in, a;
iterate 12;
stencil jacobi (B, A, a) {
  B[k][j][i] = a * (A[k][j][i+1] + A[k][j][i-1] + A[k][j+1][i]
    + A[k][j-1][i] + A[k+1][j][i] + A[k-1][j][i] + A[k][j][i]);
}
jacobi (out, in, a);
copyout out;
"""


@pytest.fixture
def jac_result():
    ir = build_ir(parse(JACOBI))
    plan = KernelPlan(
        kernel_names=("jacobi.0",),
        block=(32, 16),
        streaming="serial",
        stream_axis=0,
        placements=(("in", "shmem"),),
    )
    return ir, plan, simulate(ir, plan, P100)


class TestClassifyLevel:
    def test_bandwidth(self):
        verdict = classify_level(P100, "dram", 1.0)  # ridge 6.42
        assert verdict.verdict == BANDWIDTH_BOUND

    def test_compute(self):
        verdict = classify_level(P100, "dram", 7.0)
        assert verdict.verdict == COMPUTE_BOUND

    def test_ambiguous_band(self):
        # Within 25% below the ridge.
        verdict = classify_level(P100, "dram", 6.42 * 0.85)
        assert verdict.verdict == AMBIGUOUS

    def test_exact_ridge_is_compute(self):
        verdict = classify_level(P100, "dram", P100.ridge_dram)
        assert verdict.verdict == COMPUTE_BOUND

    def test_severity_orders(self):
        low = classify_level(P100, "dram", 0.5)
        high = classify_level(P100, "dram", 2.0)
        assert low.severity > high.severity


class TestClassifyKernel:
    def test_smoother_is_bandwidth_bound(self, jac_result):
        _ir, _plan, result = jac_result
        report = classify_result(result, P100)
        assert report.bound_level in ("dram", "tex")
        assert report.bandwidth_bound_at("dram")

    def test_oi_table_has_three_levels(self, jac_result):
        _ir, _plan, result = jac_result
        table = oi_table(result.counters)
        assert set(table) == {"dram", "tex", "shm"}

    def test_latency_classification(self):
        # Synthetic counters: bound nowhere, low occupancy.
        from repro.gpu.counters import KernelCounters

        counters = KernelCounters(
            flops=1e9, useful_flops=1e9,
            dram_read_bytes=1e6, dram_write_bytes=1e6,
            tex_bytes=1e6, shm_bytes=1e6, spill_bytes=0.0,
            blocks=100, threads_per_block=256, regs_per_thread=255,
            regs_demand=255, shmem_per_block=0, syncs=0,
        )
        report = classify(counters, occupancy=0.125, device=P100)
        assert report.bound_level == "latency"
        assert report.latency_bound

    def test_compute_classification_at_high_occupancy(self):
        from repro.gpu.counters import KernelCounters

        counters = KernelCounters(
            flops=1e9, useful_flops=1e9,
            dram_read_bytes=1e6, dram_write_bytes=1e6,
            tex_bytes=1e6, shm_bytes=1e6, spill_bytes=0.0,
            blocks=100, threads_per_block=256, regs_per_thread=64,
            regs_demand=64, shmem_per_block=0, syncs=0,
        )
        report = classify(counters, occupancy=0.5, device=P100)
        assert report.bound_level == "compute"
        assert report.compute_bound()
