"""Tests for the Section IV-A advisor rules."""

import pytest

from repro.codegen import KernelPlan
from repro.dsl import parse
from repro.ir import build_ir
from repro.profiling import advise

ITERATIVE_SRC = """
parameter L=512, M=512, N=512;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a;
copyin in, a;
iterate 12;
stencil s (B, A, a) {
  B[k][j][i] = a * (A[k][j][i+1] + A[k][j][i-1] + A[k+1][j][i]
    + A[k-1][j][i] + A[k][j][i]);
}
s (out, in, a);
copyout out;
"""


def _spatial_heavy_src():
    """A register-hungry spatial kernel (many temps, many arrays)."""
    arrays = ", ".join(f"u{n}[N,N,N]" for n in range(8))
    temps = []
    acc = []
    for n in range(8):
        temps.append(
            f"t{n} = u{n}[k][j][i+2]*u{n}[k][j][i-2] + u{n}[k][j+1][i]"
            f" + u{n}[k][j-1][i] + u{n}[k+2][j][i] + u{n}[k-2][j][i];"
        )
        acc.append(f"t{n}")
    body = "\n  ".join(temps)
    params = ", ".join(f"u{n}" for n in range(8))
    return f"""
    parameter N=320;
    iterator k, j, i;
    double {arrays}, out[N,N,N];
    copyin {params};
    stencil heavy (out, {params}) {{
      {body}
      out[k][j][i] = {' + '.join(acc)};
    }}
    heavy (out, {params});
    copyout out;
    """


class TestIterativeAdvice:
    def test_bandwidth_bound_iterative_explores_fusion(self):
        ir = build_ir(parse(ITERATIVE_SRC))
        plan = KernelPlan(
            kernel_names=("s.0",), block=(32, 16),
            streaming="serial", stream_axis=0,
            placements=(("in", "shmem"),),
        )
        advice = advise(ir, plan)
        assert advice.explore_higher_fusion
        assert advice.use_shared_memory

    def test_hints_are_textual(self):
        ir = build_ir(parse(ITERATIVE_SRC))
        plan = KernelPlan(
            kernel_names=("s.0",), block=(32, 16),
            streaming="serial", stream_axis=0,
        )
        advice = advise(ir, plan)
        assert all(isinstance(h, str) and h for h in advice.hints)


class TestSpatialAdvice:
    def test_register_pressure_disables_unrolling(self):
        ir = build_ir(parse(_spatial_heavy_src()))
        plan = KernelPlan(
            kernel_names=("heavy.0",), block=(16, 16),
            streaming="serial", stream_axis=0,
            placements=tuple((f"u{n}", "shmem") for n in range(8)),
            max_registers=32,
        )
        advice = advise(ir, plan)
        assert not advice.use_unrolling
        assert advice.explore_fission

    def test_texture_bound_spatial_uses_shared(self):
        ir = build_ir(parse(_spatial_heavy_src()))
        plan = KernelPlan(
            kernel_names=("heavy.0",), block=(16, 16),
            streaming="serial", stream_axis=0,
        )
        advice = advise(ir, plan)
        assert advice.use_shared_memory

    def test_suppressed_lists_disabled_families(self):
        ir = build_ir(parse(_spatial_heavy_src()))
        plan = KernelPlan(
            kernel_names=("heavy.0",), block=(16, 16),
            streaming="serial", stream_axis=0,
            placements=tuple((f"u{n}", "shmem") for n in range(8)),
            max_registers=32,
        )
        advice = advise(ir, plan)
        assert "loop unrolling" in advice.suppressed()
