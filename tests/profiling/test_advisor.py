"""Tests for the Section IV-A advisor rules."""

import pytest

from repro.codegen import KernelPlan
from repro.dsl import parse
from repro.ir import build_ir
from repro.profiling import advise

ITERATIVE_SRC = """
parameter L=512, M=512, N=512;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a;
copyin in, a;
iterate 12;
stencil s (B, A, a) {
  B[k][j][i] = a * (A[k][j][i+1] + A[k][j][i-1] + A[k+1][j][i]
    + A[k-1][j][i] + A[k][j][i]);
}
s (out, in, a);
copyout out;
"""


def _spatial_heavy_src():
    """A register-hungry spatial kernel (many temps, many arrays)."""
    arrays = ", ".join(f"u{n}[N,N,N]" for n in range(8))
    temps = []
    acc = []
    for n in range(8):
        temps.append(
            f"t{n} = u{n}[k][j][i+2]*u{n}[k][j][i-2] + u{n}[k][j+1][i]"
            f" + u{n}[k][j-1][i] + u{n}[k+2][j][i] + u{n}[k-2][j][i];"
        )
        acc.append(f"t{n}")
    body = "\n  ".join(temps)
    params = ", ".join(f"u{n}" for n in range(8))
    return f"""
    parameter N=320;
    iterator k, j, i;
    double {arrays}, out[N,N,N];
    copyin {params};
    stencil heavy (out, {params}) {{
      {body}
      out[k][j][i] = {' + '.join(acc)};
    }}
    heavy (out, {params});
    copyout out;
    """


class TestIterativeAdvice:
    def test_bandwidth_bound_iterative_explores_fusion(self):
        ir = build_ir(parse(ITERATIVE_SRC))
        plan = KernelPlan(
            kernel_names=("s.0",), block=(32, 16),
            streaming="serial", stream_axis=0,
            placements=(("in", "shmem"),),
        )
        advice = advise(ir, plan)
        assert advice.explore_higher_fusion
        assert advice.use_shared_memory

    def test_hints_are_textual(self):
        ir = build_ir(parse(ITERATIVE_SRC))
        plan = KernelPlan(
            kernel_names=("s.0",), block=(32, 16),
            streaming="serial", stream_axis=0,
        )
        advice = advise(ir, plan)
        assert all(isinstance(h, str) and h for h in advice.hints)


class TestSpatialAdvice:
    def test_register_pressure_disables_unrolling(self):
        ir = build_ir(parse(_spatial_heavy_src()))
        plan = KernelPlan(
            kernel_names=("heavy.0",), block=(16, 16),
            streaming="serial", stream_axis=0,
            placements=tuple((f"u{n}", "shmem") for n in range(8)),
            max_registers=32,
        )
        advice = advise(ir, plan)
        assert not advice.use_unrolling
        assert advice.explore_fission

    def test_texture_bound_spatial_uses_shared(self):
        ir = build_ir(parse(_spatial_heavy_src()))
        plan = KernelPlan(
            kernel_names=("heavy.0",), block=(16, 16),
            streaming="serial", stream_axis=0,
        )
        advice = advise(ir, plan)
        assert advice.use_shared_memory

    def test_suppressed_lists_disabled_families(self):
        ir = build_ir(parse(_spatial_heavy_src()))
        plan = KernelPlan(
            kernel_names=("heavy.0",), block=(16, 16),
            streaming="serial", stream_axis=0,
            placements=tuple((f"u{n}", "shmem") for n in range(8)),
            max_registers=32,
        )
        advice = advise(ir, plan)
        assert "loop unrolling" in advice.suppressed()


# --- synthetic bottleneck classes -----------------------------------------
#
# ``advise`` accepts an injected ``ProfileReport``, so each Section IV-A
# rule can be exercised against a hand-built counter set whose OIs land
# decisively on one side of the P100 ridge points (outside the 0.25
# ambiguity band, so no differencing simulations run).

SPATIAL_SRC = """
parameter N=256;
iterator k, j, i;
double in[N,N,N], out[N,N,N];
copyin in;
stencil s (B, A) {
  B[k][j][i] = A[k][j][i] + A[k][j][i+1] + A[k][j][i-1];
}
s (out, in);
copyout out;
"""


def _synthetic_report(
    plan,
    *,
    flops=1e9,
    dram_bytes=1e8,
    tex_bytes=1e8,
    shm_bytes=0.0,
    spill_bytes=0.0,
    occupancy=0.5,
    regs_per_thread=32,
    regs_demand=None,
):
    """A ProfileReport whose OIs are exactly flops / bytes per level."""
    from repro.gpu.counters import (
        KernelCounters,
        SimulationResult,
        TimingBreakdown,
    )
    from repro.gpu.occupancy import OccupancyResult
    from repro.profiling.nvprof import ProfileReport

    counters = KernelCounters(
        flops=flops,
        useful_flops=flops,
        dram_read_bytes=dram_bytes,
        dram_write_bytes=0.0,
        tex_bytes=tex_bytes,
        shm_bytes=shm_bytes,
        spill_bytes=spill_bytes,
        blocks=1024,
        threads_per_block=256,
        regs_per_thread=regs_per_thread,
        regs_demand=(
            regs_per_thread if regs_demand is None else regs_demand
        ),
        shmem_per_block=0,
        syncs=0.0,
    )
    occ = OccupancyResult(
        blocks_per_sm=4,
        active_warps=32,
        occupancy=occupancy,
        limiter="threads",
    )
    timing = TimingBreakdown(
        compute_s=1e-3, dram_s=1e-3, tex_s=1e-3, shm_s=1e-3,
        sync_s=0.0, latency_s=0.0, launch_s=0.0,
    )
    return ProfileReport(
        plan=plan,
        metrics={"elapsed_ms": 1.0},
        result=SimulationResult(
            counters=counters, occupancy=occ, timing=timing
        ),
    )


class TestSyntheticBottleneckClasses:
    """One test per bottleneck class, via injected reports."""

    @pytest.fixture(scope="class")
    def iterative_ir(self):
        return build_ir(parse(ITERATIVE_SRC))

    @pytest.fixture(scope="class")
    def spatial_ir(self):
        return build_ir(parse(SPATIAL_SRC))

    def _plan(self, ir):
        return KernelPlan(
            kernel_names=(ir.kernels[0].name + ".0",),
            block=(32, 8),
            streaming="serial",
            stream_axis=0,
        )

    def test_compute_bound_disables_shared_and_unrolling(self, spatial_ir):
        plan = self._plan(spatial_ir)
        # OI_dram = 10 >= 6.42, OI_tex = 10 >= 2.35, OI_shm = inf
        report = _synthetic_report(
            plan, flops=1e10, dram_bytes=1e9, tex_bytes=1e9
        )
        advice = advise(spatial_ir, plan, report=report)
        assert advice.bottleneck.bound_level == "compute"
        assert not advice.use_shared_memory
        assert not advice.use_unrolling
        assert advice.use_register_opts
        assert any("compute-bound" in h for h in advice.hints)

    def test_dram_bound_iterative_explores_fusion(self, iterative_ir):
        plan = self._plan(iterative_ir)
        # OI_dram = 1 << 6.42 * 0.75; tex and shm decisively compute
        report = _synthetic_report(
            plan, flops=1e9, dram_bytes=1e9, tex_bytes=1e8
        )
        advice = advise(iterative_ir, plan, report=report)
        assert advice.bottleneck.bound_level == "dram"
        assert advice.explore_higher_fusion
        assert any("fusion" in h for h in advice.hints)

    def test_tex_bound_spatial_enables_shared(self, spatial_ir):
        plan = self._plan(spatial_ir)
        # OI_tex = 1 << 2.35 * 0.75; dram decisively compute
        report = _synthetic_report(
            plan, flops=1e9, dram_bytes=1e8, tex_bytes=1e9
        )
        advice = advise(spatial_ir, plan, report=report)
        assert advice.bottleneck.bound_level == "tex"
        assert advice.use_shared_memory
        assert not advice.explore_higher_fusion  # spatial, not iterative
        assert any("texture" in h for h in advice.hints)

    def test_shm_bound_enables_register_opts(self, spatial_ir):
        plan = self._plan(spatial_ir)
        # OI_shm = 0.25 << 0.49 * 0.75; dram/tex decisively compute
        report = _synthetic_report(
            plan, flops=1e9, dram_bytes=1e8, tex_bytes=1e8, shm_bytes=4e9
        )
        advice = advise(spatial_ir, plan, report=report)
        assert advice.bottleneck.bound_level == "shm"
        assert advice.use_register_opts
        assert any("shared-memory bandwidth" in h for h in advice.hints)

    def test_latency_bound_at_low_occupancy(self, spatial_ir):
        plan = self._plan(spatial_ir)
        # compute-bound everywhere but occupancy below the latency floor
        report = _synthetic_report(
            plan, flops=1e10, dram_bytes=1e9, tex_bytes=1e9, occupancy=0.1
        )
        advice = advise(spatial_ir, plan, report=report)
        assert advice.bottleneck.bound_level == "latency"
        assert advice.bottleneck.latency_bound

    def test_register_spills_disable_unrolling(self, spatial_ir):
        plan = self._plan(spatial_ir)
        report = _synthetic_report(
            plan,
            flops=1e10,
            dram_bytes=1e9,
            tex_bytes=1e9,
            regs_per_thread=32,
            regs_demand=64,
        )
        advice = advise(spatial_ir, plan, report=report)
        assert not advice.use_unrolling
        assert advice.explore_fission
        assert any("register pressure" in h for h in advice.hints)

    def test_spill_pressure_ratio_without_hard_spills(self, spatial_ir):
        plan = self._plan(spatial_ir)
        # spill bytes are 5% of DRAM traffic: over SPILL_PRESSURE_RATIO
        # even though regs_demand == regs_per_thread
        report = _synthetic_report(
            plan, flops=1e10, dram_bytes=1e9, tex_bytes=1e9, spill_bytes=5e7
        )
        advice = advise(spatial_ir, plan, report=report)
        assert advice.explore_fission
        assert not advice.use_unrolling
