"""Differential fuzzing of the transformation certifier.

The certifier's one hard promise is an asymmetry: it may *refute* a
plan the block-tiled executor happens to compute correctly (it refuses
to assume cross-chunk recompute overlap), but it must never *accept* a
plan whose executor output diverges from the reference interpreter.
This suite hammers that promise with random programs and adversarially
mutated plans (reversed fusion orders, forced concurrent chunking,
forced retiming): every accepted plan executes and must match the
reference bit-for-bit; a mismatch on an accepted plan is a hard
failure.  ``derandomize=True`` keeps the corpus fixed so CI failures
reproduce locally.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.codegen import KernelPlan, ProgramPlan, validate_plan
from repro.codegen.resources import InvalidPlan
from repro.dsl import parse
from repro.gpu.executor import (
    allocate_inputs,
    default_scalars,
    execute_program_plan,
    execute_reference,
)
from repro.ir import build_ir
from repro.lint import certify_plan_transformations, replay_witness

from tests.integration.test_plan_semantics_property import plans_for, programs


def _mutate(draw, plan):
    """Adversarial plan mutations the tuner would never emit itself."""
    choice = draw(st.integers(0, 3))
    if choice == 1 and len(plan.kernel_names) > 1:
        return plan.replace(
            kernel_names=tuple(reversed(plan.kernel_names))
        )
    if choice == 2 and plan.streaming == "serial":
        return plan.replace(
            streaming="concurrent",
            concurrent_chunks=draw(st.sampled_from([2, 3])),
        )
    if choice == 3 and plan.uses_streaming and not plan.retime:
        return plan.replace(retime=True)
    return plan


@st.composite
def adversarial_case(draw):
    text, iterative, second_kernel = draw(programs())
    ir = build_ir(parse(text))
    plans = draw(plans_for(ir, iterative, second_kernel))
    return ir, tuple(_mutate(draw, plan) for plan in plans), iterative


def _refuted(ir, plan):
    return any(
        d.severity == "error"
        for d in certify_plan_transformations(ir, plan)
    )


@given(adversarial_case())
@settings(max_examples=220, deadline=None, derandomize=True)
def test_certifier_accept_implies_executor_matches_reference(case):
    ir, plans, iterative = case
    for plan in plans:
        if _refuted(ir, plan):
            # Conservative refutation — allowed; the engine never runs
            # refuted plans, so correctness is moot.
            return
        try:
            validate_plan(ir, plan)
        except InvalidPlan:
            # Structurally invalid (RL204 territory): also never run.
            return
    inputs = allocate_inputs(ir)
    scalars = default_scalars(ir)
    steps = plans[0].time_tile if iterative else 1
    reference = execute_reference(ir, inputs, scalars, time_iterations=steps)
    got = execute_program_plan(ir, ProgramPlan(plans=plans), inputs, scalars)
    for name in ir.copyout:
        assert np.array_equal(reference[name], got[name]), (
            "certifier accepted a diverging plan: "
            + "; ".join(p.describe() for p in plans)
        )


@given(programs().filter(lambda case: case[2]))
@settings(max_examples=40, deadline=None, derandomize=True)
def test_reversed_fusion_refutations_carry_live_witnesses(case):
    # Every RL301 the fuzzer can provoke must rest on a replayable
    # counterexample, not just a structural argument.
    text, _, _ = case
    ir = build_ir(parse(text))
    names = tuple(k.name for k in ir.kernels)
    plan = KernelPlan(tuple(reversed(names)), block=(4, 4, 4))
    findings = certify_plan_transformations(ir, plan)
    assert [d.code for d in findings] == ["RL301"]
    assert findings[0].witness is not None
    assert replay_witness(ir, findings[0].witness).diverged
