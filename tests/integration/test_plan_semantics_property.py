"""Property test: any legal plan computes exactly what the program says.

Random stencil programs (random orders, offsets, coefficients, optional
second kernel, optional time iteration) are executed under random legal
kernel plans (block shapes, streaming modes, time tiles, unrolling,
placements) and must match the straightforward reference interpreter
bit-for-bit.  This is the repository's strongest guarantee that the
overlapped-tiling / halo / fusion arithmetic in the planner is sound.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.codegen import KernelPlan, validate_plan
from repro.dsl import parse
from repro.gpu.executor import (
    allocate_inputs,
    default_scalars,
    execute_plan,
    execute_reference,
)
from repro.ir import build_ir

# ---------------------------------------------------------------------------
# random program generation
# ---------------------------------------------------------------------------

_offsets = st.integers(min_value=-2, max_value=2)


@st.composite
def stencil_terms(draw, array="A", min_terms=2, max_terms=6):
    count = draw(st.integers(min_terms, max_terms))
    terms = []
    for index in range(count):
        dk = draw(_offsets)
        dj = draw(_offsets)
        di = draw(_offsets)
        coeff = draw(st.integers(1, 9))
        def off(it, d):
            return it if d == 0 else f"{it}{'+' if d > 0 else ''}{d}"
        terms.append(
            f"0.{coeff}*{array}[{off('k', dk)}][{off('j', dj)}]"
            f"[{off('i', di)}]"
        )
    return " + ".join(terms)


@st.composite
def programs(draw):
    body = draw(stencil_terms())
    iterative = draw(st.booleans())
    second_kernel = not iterative and draw(st.booleans())
    size = draw(st.sampled_from([14, 17, 20]))
    text = f"""
    parameter L={size}, M={size}, N={size};
    iterator k, j, i;
    double in[L,M,N], out[L,M,N], tmp[L,M,N];
    copyin in;
    {'iterate 4;' if iterative else ''}
    stencil first (B, A) {{
      B[k][j][i] = {body};
    }}
    """
    if second_kernel:
        body2 = draw(stencil_terms(array="A", min_terms=2, max_terms=4))
        text += f"""
    stencil second (B, A) {{
      B[k][j][i] = {body2};
    }}
    first (tmp, in);
    second (out, tmp);
    copyout out;
    """
    else:
        text += """
    first (out, in);
    copyout out;
    """
    return text, iterative, second_kernel


@st.composite
def plans_for(draw, ir, iterative, second_kernel):
    streaming = draw(st.sampled_from(["serial", "concurrent", "none"]))
    if streaming == "none":
        block = draw(
            st.sampled_from([(4, 4, 4), (2, 4, 8), (4, 8, 4), (3, 5, 7)])
        )
        unroll = (1, 1, 1)
    else:
        block = draw(st.sampled_from([(4, 4), (8, 4), (4, 8), (5, 6)]))
        unroll = draw(st.sampled_from([(1, 1, 1), (1, 2, 1), (1, 1, 2),
                                       (1, 2, 2)]))
    if second_kernel:
        if draw(st.booleans()):
            names = tuple(k.name for k in ir.kernels)  # fused launch
        else:
            names = None  # one launch per kernel
        time_tile = 1
    else:
        names = (ir.kernels[0].name,)
        time_tile = draw(st.sampled_from([1, 2, 3])) if iterative else 1
    if names is None:
        # Per-kernel launches sharing the same geometry choices.
        base = dict(
            block=block,
            streaming=streaming,
            stream_axis=0,
            concurrent_chunks=draw(st.sampled_from([1, 2, 3]))
            if streaming == "concurrent"
            else 1,
            unroll=unroll,
            prefetch=draw(st.booleans()),
            perspective=draw(st.sampled_from(["output", "input", "mixed"])),
        )
        return tuple(
            KernelPlan(kernel_names=(k.name,), **base) for k in ir.kernels
        )
    placements = ()
    if draw(st.booleans()):
        placements = (("in", "shmem"),)
    return (
        KernelPlan(
            kernel_names=names,
            block=block,
            streaming=streaming,
            stream_axis=0,
            concurrent_chunks=draw(st.sampled_from([1, 2, 3]))
            if streaming == "concurrent"
            else 1,
            time_tile=time_tile,
            unroll=unroll,
            placements=placements,
            prefetch=draw(st.booleans()),
            perspective=draw(st.sampled_from(["output", "input", "mixed"])),
        ),
    )


@st.composite
def program_and_plan(draw):
    text, iterative, second_kernel = draw(programs())
    ir = build_ir(parse(text))
    plans = draw(plans_for(ir, iterative, second_kernel))
    return ir, plans, iterative


@given(program_and_plan())
@settings(max_examples=60, deadline=None)
def test_random_plan_matches_reference(case):
    from repro.codegen import ProgramPlan
    from repro.gpu.executor import execute_program_plan

    ir, plans, iterative = case
    for plan in plans:
        validate_plan(ir, plan)
    inputs = allocate_inputs(ir)
    scalars = default_scalars(ir)
    steps = plans[0].time_tile if iterative else 1
    reference = execute_reference(ir, inputs, scalars, time_iterations=steps)
    got = execute_program_plan(ir, ProgramPlan(plans=plans), inputs, scalars)
    for name in ir.copyout:
        assert np.array_equal(reference[name], got[name]), [
            p.describe() for p in plans
        ]


@given(program_and_plan())
@settings(max_examples=30, deadline=None)
def test_random_plan_simulates_and_emits(case):
    """Every semantically valid plan must also price and render."""
    from repro.codegen import emit_cuda
    from repro.gpu import simulate
    from repro.gpu.simulator import PlanInfeasible

    ir, plans, _iterative = case
    for plan in plans:
        try:
            result = simulate(ir, plan)
        except PlanInfeasible:
            continue
        assert result.time_s > 0
        assert result.counters.flops >= result.counters.useful_flops
        source = emit_cuda(ir, plan).source
        assert source.count("{") == source.count("}")
        assert "__global__" in source


# ---------------------------------------------------------------------------
# fission candidates: every generated split must preserve semantics
# ---------------------------------------------------------------------------


@st.composite
def multi_output_programs(draw):
    """Single-kernel programs writing 2-3 outputs through shared locals
    (the paper's Figure 3 shape, which fission splits apart)."""
    size = draw(st.sampled_from([12, 15, 18]))
    n_outputs = draw(st.integers(2, 3))
    shared = draw(stencil_terms(array="A", min_terms=2, max_terms=4))
    lines = [f"t0 = {shared};"]
    for index in range(n_outputs):
        own = draw(stencil_terms(array="A", min_terms=1, max_terms=3))
        coeff = draw(st.integers(1, 9))
        lines.append(f"O{index}[k][j][i] = 0.{coeff}*t0 + {own};")
    outs = [f"out{index}" for index in range(n_outputs)]
    formals = [f"O{index}" for index in range(n_outputs)]
    decls = ", ".join(f"{name}[L,M,N]" for name in outs)
    body = "\n      ".join(lines)
    text = f"""
    parameter L={size}, M={size}, N={size};
    iterator k, j, i;
    double in[L,M,N], {decls};
    copyin in;
    stencil multi ({', '.join(formals)}, A) {{
      {body}
    }}
    multi ({', '.join(outs)}, in);
    copyout {', '.join(outs)};
    """
    return text


@st.composite
def shared_geometry(draw):
    """One random legal launch geometry, reused across a DAG's kernels."""
    streaming = draw(st.sampled_from(["serial", "concurrent", "none"]))
    if streaming == "none":
        block = draw(st.sampled_from([(4, 4, 4), (2, 4, 8), (3, 5, 7)]))
        unroll = (1, 1, 1)
    else:
        block = draw(st.sampled_from([(4, 4), (8, 4), (5, 6)]))
        unroll = draw(st.sampled_from([(1, 1, 1), (1, 2, 1), (1, 1, 2)]))
    return dict(
        block=block,
        streaming=streaming,
        stream_axis=0,
        concurrent_chunks=draw(st.sampled_from([1, 2]))
        if streaming == "concurrent"
        else 1,
        unroll=unroll,
        prefetch=draw(st.booleans()),
        perspective=draw(st.sampled_from(["output", "input", "mixed"])),
    )


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_fission_candidates_match_reference(data):
    """trivial/recompute/maxfuse variants compute bitwise what the
    original multi-output kernel computes, under random legal plans."""
    from repro.codegen import ProgramPlan
    from repro.gpu.executor import execute_program_plan
    from repro.tuning.fission import generate_fission_candidates

    text = data.draw(multi_output_programs())
    ir = build_ir(parse(text))
    inputs = allocate_inputs(ir)
    scalars = default_scalars(ir)
    reference = execute_reference(ir, inputs, scalars, time_iterations=1)

    candidates = generate_fission_candidates(ir)
    assert candidates  # the three §VI-B versions
    for candidate in candidates:
        geometry = data.draw(shared_geometry())
        plans = tuple(
            KernelPlan(kernel_names=(kernel.name,), **geometry)
            for kernel in candidate.ir.kernels
        )
        for plan in plans:
            validate_plan(candidate.ir, plan)
        got = execute_program_plan(
            candidate.ir, ProgramPlan(plans=plans), inputs, scalars
        )
        for name in ir.copyout:
            assert np.array_equal(reference[name], got[name]), (
                candidate.label,
                [p.describe() for p in plans],
            )


# ---------------------------------------------------------------------------
# deep-tuned schedules: mixed time tiles + launch counts + ping-pong
# ---------------------------------------------------------------------------


@st.composite
def iterative_program_and_schedule(draw):
    """An iterative stencil plus a random opt(T)-style launch schedule
    mixing fusion degrees, exactly what deep tuning materializes."""
    body = draw(stencil_terms())
    size = draw(st.sampled_from([14, 17]))
    text = f"""
    parameter L={size}, M={size}, N={size};
    iterator k, j, i;
    double in[L,M,N], out[L,M,N];
    copyin in;
    iterate 8;
    stencil first (B, A) {{
      B[k][j][i] = {body};
    }}
    first (out, in);
    copyout out;
    """
    ir = build_ir(parse(text))
    tiles = draw(
        st.lists(st.integers(1, 3), min_size=1, max_size=4)
    )
    geometry = draw(shared_geometry())
    per_tile = {
        tile: KernelPlan(
            kernel_names=(ir.kernels[0].name,), time_tile=tile, **geometry
        )
        for tile in set(tiles)
    }
    # Run-length encode consecutive launches the way
    # schedule_to_program_plan does.
    plans, counts = [], []
    for tile in tiles:
        plan = per_tile[tile]
        if plans and plans[-1] is plan:
            counts[-1] += 1
        else:
            plans.append(plan)
            counts.append(1)
    return ir, tuple(plans), tuple(counts), sum(tiles)


@given(iterative_program_and_schedule())
@settings(max_examples=30, deadline=None)
def test_deep_tuned_schedule_matches_reference(case):
    """A mixed-degree launch schedule over T iterations equals T steps
    of the reference interpreter, bitwise (ping-pong swap included)."""
    from repro.codegen import ProgramPlan
    from repro.gpu.executor import execute_program_plan

    ir, plans, counts, total_steps = case
    for plan in plans:
        validate_plan(ir, plan)
    inputs = allocate_inputs(ir)
    scalars = default_scalars(ir)
    reference = execute_reference(
        ir, inputs, scalars, time_iterations=total_steps
    )
    schedule = ProgramPlan(plans=plans, launch_counts=counts)
    got = execute_program_plan(ir, schedule, inputs, scalars)
    for name in ir.copyout:
        assert np.array_equal(reference[name], got[name]), (
            [p.describe() for p in plans],
            counts,
        )
