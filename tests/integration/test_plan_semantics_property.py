"""Property test: any legal plan computes exactly what the program says.

Random stencil programs (random orders, offsets, coefficients, optional
second kernel, optional time iteration) are executed under random legal
kernel plans (block shapes, streaming modes, time tiles, unrolling,
placements) and must match the straightforward reference interpreter
bit-for-bit.  This is the repository's strongest guarantee that the
overlapped-tiling / halo / fusion arithmetic in the planner is sound.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.codegen import KernelPlan, validate_plan
from repro.dsl import parse
from repro.gpu.executor import (
    allocate_inputs,
    default_scalars,
    execute_plan,
    execute_reference,
)
from repro.ir import build_ir

# ---------------------------------------------------------------------------
# random program generation
# ---------------------------------------------------------------------------

_offsets = st.integers(min_value=-2, max_value=2)


@st.composite
def stencil_terms(draw, array="A", min_terms=2, max_terms=6):
    count = draw(st.integers(min_terms, max_terms))
    terms = []
    for index in range(count):
        dk = draw(_offsets)
        dj = draw(_offsets)
        di = draw(_offsets)
        coeff = draw(st.integers(1, 9))
        def off(it, d):
            return it if d == 0 else f"{it}{'+' if d > 0 else ''}{d}"
        terms.append(
            f"0.{coeff}*{array}[{off('k', dk)}][{off('j', dj)}]"
            f"[{off('i', di)}]"
        )
    return " + ".join(terms)


@st.composite
def programs(draw):
    body = draw(stencil_terms())
    iterative = draw(st.booleans())
    second_kernel = not iterative and draw(st.booleans())
    size = draw(st.sampled_from([14, 17, 20]))
    text = f"""
    parameter L={size}, M={size}, N={size};
    iterator k, j, i;
    double in[L,M,N], out[L,M,N], tmp[L,M,N];
    copyin in;
    {'iterate 4;' if iterative else ''}
    stencil first (B, A) {{
      B[k][j][i] = {body};
    }}
    """
    if second_kernel:
        body2 = draw(stencil_terms(array="A", min_terms=2, max_terms=4))
        text += f"""
    stencil second (B, A) {{
      B[k][j][i] = {body2};
    }}
    first (tmp, in);
    second (out, tmp);
    copyout out;
    """
    else:
        text += """
    first (out, in);
    copyout out;
    """
    return text, iterative, second_kernel


@st.composite
def plans_for(draw, ir, iterative, second_kernel):
    streaming = draw(st.sampled_from(["serial", "concurrent", "none"]))
    if streaming == "none":
        block = draw(
            st.sampled_from([(4, 4, 4), (2, 4, 8), (4, 8, 4), (3, 5, 7)])
        )
        unroll = (1, 1, 1)
    else:
        block = draw(st.sampled_from([(4, 4), (8, 4), (4, 8), (5, 6)]))
        unroll = draw(st.sampled_from([(1, 1, 1), (1, 2, 1), (1, 1, 2),
                                       (1, 2, 2)]))
    if second_kernel:
        if draw(st.booleans()):
            names = tuple(k.name for k in ir.kernels)  # fused launch
        else:
            names = None  # one launch per kernel
        time_tile = 1
    else:
        names = (ir.kernels[0].name,)
        time_tile = draw(st.sampled_from([1, 2, 3])) if iterative else 1
    if names is None:
        # Per-kernel launches sharing the same geometry choices.
        base = dict(
            block=block,
            streaming=streaming,
            stream_axis=0,
            concurrent_chunks=draw(st.sampled_from([1, 2, 3]))
            if streaming == "concurrent"
            else 1,
            unroll=unroll,
            prefetch=draw(st.booleans()),
            perspective=draw(st.sampled_from(["output", "input", "mixed"])),
        )
        return tuple(
            KernelPlan(kernel_names=(k.name,), **base) for k in ir.kernels
        )
    placements = ()
    if draw(st.booleans()):
        placements = (("in", "shmem"),)
    return (
        KernelPlan(
            kernel_names=names,
            block=block,
            streaming=streaming,
            stream_axis=0,
            concurrent_chunks=draw(st.sampled_from([1, 2, 3]))
            if streaming == "concurrent"
            else 1,
            time_tile=time_tile,
            unroll=unroll,
            placements=placements,
            prefetch=draw(st.booleans()),
            perspective=draw(st.sampled_from(["output", "input", "mixed"])),
        ),
    )


@st.composite
def program_and_plan(draw):
    text, iterative, second_kernel = draw(programs())
    ir = build_ir(parse(text))
    plans = draw(plans_for(ir, iterative, second_kernel))
    return ir, plans, iterative


@given(program_and_plan())
@settings(max_examples=60, deadline=None)
def test_random_plan_matches_reference(case):
    from repro.codegen import ProgramPlan
    from repro.gpu.executor import execute_program_plan

    ir, plans, iterative = case
    for plan in plans:
        validate_plan(ir, plan)
    inputs = allocate_inputs(ir)
    scalars = default_scalars(ir)
    steps = plans[0].time_tile if iterative else 1
    reference = execute_reference(ir, inputs, scalars, time_iterations=steps)
    got = execute_program_plan(ir, ProgramPlan(plans=plans), inputs, scalars)
    for name in ir.copyout:
        assert np.array_equal(reference[name], got[name]), [
            p.describe() for p in plans
        ]


@given(program_and_plan())
@settings(max_examples=30, deadline=None)
def test_random_plan_simulates_and_emits(case):
    """Every semantically valid plan must also price and render."""
    from repro.codegen import emit_cuda
    from repro.gpu import simulate
    from repro.gpu.simulator import PlanInfeasible

    ir, plans, _iterative = case
    for plan in plans:
        try:
            result = simulate(ir, plan)
        except PlanInfeasible:
            continue
        assert result.time_s > 0
        assert result.counters.flops >= result.counters.useful_flops
        source = emit_cuda(ir, plan).source
        assert source.count("{") == source.count("}")
        assert "__global__" in source
