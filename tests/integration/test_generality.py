"""Generality checks: 2-D domains, single precision, full pipeline."""

import numpy as np
import pytest

from repro import build_ir, optimize, parse, simulate
from repro.codegen import KernelPlan, emit_cuda
from repro.gpu.executor import (
    allocate_inputs,
    default_scalars,
    execute_plan,
    execute_reference,
)

SRC_2D = """
parameter M=64, N=64;
iterator j, i;
double in[M,N], out[M,N], w;
copyin in, w;
iterate 4;
stencil blur (B, A, w) {
  B[j][i] = w * (A[j][i+1] + A[j][i-1] + A[j+1][i] + A[j-1][i]);
}
blur (out, in, w);
copyout out;
"""


class Test2D:
    @pytest.fixture
    def ir(self):
        return build_ir(parse(SRC_2D))

    def test_plan_matches_reference(self, ir):
        plan = KernelPlan(
            kernel_names=("blur.0",),
            block=(16,),
            streaming="serial",
            stream_axis=0,
            time_tile=2,
        )
        inputs = allocate_inputs(ir)
        scalars = default_scalars(ir)
        reference = execute_reference(ir, inputs, scalars, time_iterations=2)
        got = execute_plan(ir, plan, inputs, scalars)
        assert np.array_equal(reference["out"], got["out"])

    def test_non_streaming_2d(self, ir):
        plan = KernelPlan(
            kernel_names=("blur.0",), block=(8, 8), streaming="none"
        )
        inputs = allocate_inputs(ir)
        scalars = default_scalars(ir)
        reference = execute_reference(ir, inputs, scalars, time_iterations=1)
        got = execute_plan(ir, plan, inputs, scalars)
        assert np.array_equal(reference["out"], got["out"])

    def test_simulates_and_emits(self, ir):
        plan = KernelPlan(
            kernel_names=("blur.0",),
            block=(16,),
            streaming="serial",
            stream_axis=0,
        )
        result = simulate(ir, plan)
        assert result.time_s > 0
        source = emit_cuda(ir, plan).source
        assert source.count("{") == source.count("}")
        assert "__global__" in source

    def test_full_pipeline(self, ir):
        outcome = optimize(ir, top_k=1)
        assert outcome.tflops > 0
        assert outcome.schedule.total_time_steps() == 4


class TestSinglePrecision:
    @pytest.fixture
    def ir(self):
        return build_ir(parse(SRC_2D.replace("double", "float")))

    def test_inputs_are_float32(self, ir):
        inputs = allocate_inputs(ir)
        assert inputs["in"].dtype == np.float32

    def test_reference_stays_float32(self, ir):
        inputs = allocate_inputs(ir)
        result = execute_reference(
            ir, inputs, default_scalars(ir), time_iterations=1
        )
        assert result["out"].dtype == np.float32
        assert np.isfinite(result["out"]).all()

    def test_element_size_halves_traffic(self, ir):
        double_ir = build_ir(parse(SRC_2D))
        plan = KernelPlan(
            kernel_names=("blur.0",),
            block=(16,),
            streaming="serial",
            stream_axis=0,
        )
        single = simulate(ir, plan)
        double = simulate(double_ir, plan)
        assert single.counters.dram_write_bytes == pytest.approx(
            double.counters.dram_write_bytes / 2
        )

    def test_cuda_uses_float(self, ir):
        plan = KernelPlan(
            kernel_names=("blur.0",),
            block=(16,),
            streaming="serial",
            stream_axis=0,
        )
        source = emit_cuda(ir, plan).source
        assert "float" in source and "__global__" in source
