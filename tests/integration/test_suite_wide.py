"""Suite-wide integration checks across all 11 benchmarks."""

import pytest

from repro.codegen import emit_cuda, kernel_symbol
from repro.codegen.resources import auto_assign, seed_plan_from_pragma
from repro.dsl import parse
from repro.gpu import P100, simulate
from repro.ir import build_ir, characteristics
from repro.profiling import classify_result, profile
from repro.suite import BENCHMARKS, get, load_ir

ALL = list(BENCHMARKS)


@pytest.mark.parametrize("name", ALL)
class TestSuiteWide:
    def _seeded(self, name):
        ir = load_ir(name)
        plans = []
        for instance in ir.kernels:
            plans.append(
                auto_assign(ir, seed_plan_from_pragma(ir, instance)).plan
            )
        return ir, plans

    def test_seed_plans_simulate(self, name):
        ir, plans = self._seeded(name)
        for plan in plans:
            result = simulate(ir, plan, P100)
            assert result.time_s > 0
            assert result.counters.useful_flops > 0

    def test_flops_counter_consistent_with_table1(self, name):
        ir, plans = self._seeded(name)
        points = 1
        for extent in ir.domain_shape():
            points *= extent
        total_useful = sum(
            simulate(ir, plan, P100).counters.useful_flops for plan in plans
        )
        row = characteristics(ir)
        assert total_useful == row.flops_per_point * points

    def test_cuda_emits_for_every_kernel(self, name):
        ir, plans = self._seeded(name)
        for plan in plans:
            generated = emit_cuda(ir, plan)
            assert generated.source.count("{") == generated.source.count("}")
            assert f"__global__ void {kernel_symbol(plan)}" in generated.source
            assert "void launch_" in generated.source

    def test_profiles_and_classifies(self, name):
        ir, plans = self._seeded(name)
        report = profile(ir, plans[0], P100)
        verdict = classify_result(report.result, P100)
        assert verdict.bound_level in ("dram", "tex", "shm", "compute",
                                       "latency")

    def test_dsl_reparses(self, name):
        text = get(name).dsl()
        ir = build_ir(parse(text))
        assert len(ir.kernels) == len(load_ir(name).kernels)

    def test_spatial_seeds_are_texture_or_dram_bound(self, name):
        """Table III: the suite's spatial kernels are bandwidth-bound."""
        spec = get(name)
        if spec.iterative:
            pytest.skip("iterative")
        ir, plans = self._seeded(name)
        report = profile(ir, plans[0], P100)
        verdict = classify_result(report.result, P100)
        assert verdict.bound_level in ("dram", "tex", "shm")


class TestOccupancyPragmaEndToEnd:
    def test_occupancy_clause_rations_buffers(self):
        """§II-B2: 'occupancy t' demotes least-accessed shared buffers."""
        src = """
        parameter N=320;
        iterator k, j, i;
        double a[N,N,N], b[N,N,N], c[N,N,N], d[N,N,N], out[N,N,N];
        copyin a, b, c, d;
        #pragma stream k block (32,32) occupancy 1.0
        stencil s (out, a, b, c, d) {
          #assign shmem (a, b, c, d)
          out[k][j][i] = a[k][j][i+1] + a[k][j][i-1]
            + b[k][j+1][i] + b[k][j-1][i]
            + c[k+1][j][i] + c[k-1][j][i] + d[k][j][i];
        }
        s (out, a, b, c, d);
        copyout out;
        """
        ir = build_ir(parse(src))
        plan = seed_plan_from_pragma(ir, ir.kernels[0])
        from repro.codegen.tiling import launch_geometry, shmem_bytes_per_block
        from repro.gpu import occupancy
        from repro.gpu.registers import compiled_registers

        geometry = launch_geometry(ir, plan)
        result = occupancy(
            P100,
            geometry.threads_per_block,
            compiled_registers(ir, plan)["compiled"],
            shmem_bytes_per_block(ir, plan),
        )
        assert result.occupancy >= 1.0
        # Full occupancy with 1024-thread blocks needs <= 32 KB of
        # shared memory: the least-accessed buffer (d) must be demoted.
        shared = [a for a, s in plan.placements if s == "shmem"]
        assert len(shared) < 4
