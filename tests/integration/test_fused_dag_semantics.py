"""Fused-DAG semantics: IR-level maxfuse must preserve results.

miniflux's two kernels (15 intermediate flux arrays!) and denoise's
coefficient/update pair are fused with :func:`maxfuse` and executed as
single launches; the intra-kernel producer->consumer chains (with their
recompute halos) must still match the unfused reference bit-for-bit.
"""

import numpy as np
import pytest

from repro.codegen import KernelPlan
from repro.dsl import parse
from repro.gpu.executor import (
    allocate_inputs,
    default_scalars,
    execute_plan,
    execute_reference,
)
from repro.ir import build_ir
from repro.suite import get
from repro.tuning import maxfuse


def _small(name, size):
    spec = get(name)
    text = spec.dsl()
    for token in ("W=320", "=512"):
        if token in text:
            replacement = f"W={size}" if token == "W=320" else f"={size}"
            text = text.replace(token, replacement)
    return build_ir(parse(text))


class TestMinifluxFused:
    @pytest.fixture(scope="class")
    def setup(self):
        ir = _small("miniflux", 14)
        fused = maxfuse(ir)
        assert len(fused.kernels) == 1
        inputs = allocate_inputs(ir)
        scalars = {k: v * 0.1 for k, v in default_scalars(ir).items()}
        reference = execute_reference(ir, inputs, scalars)
        return ir, fused, inputs, scalars, reference

    @pytest.mark.parametrize(
        "kw",
        [
            dict(block=(4, 4), streaming="serial", stream_axis=0),
            dict(block=(4, 4, 4), streaming="none"),
        ],
    )
    def test_fused_plan_matches_unfused_reference(self, setup, kw):
        ir, fused, inputs, scalars, reference = setup
        plan = KernelPlan(kernel_names=(fused.kernels[0].name,), **kw)
        got = execute_plan(fused, plan, inputs, scalars)
        for m in range(5):
            assert np.array_equal(reference[f"out{m}"], got[f"out{m}"]), kw

    def test_fused_reference_matches_unfused(self, setup):
        ir, fused, inputs, scalars, reference = setup
        fused_reference = execute_reference(fused, inputs, scalars)
        for m in range(5):
            assert np.array_equal(
                reference[f"out{m}"], fused_reference[f"out{m}"]
            )


class TestDenoiseFusedTimeTiled:
    def test_fused_time_tiled_matches(self):
        ir = _small("denoise", 16)
        fused = maxfuse(ir)
        assert len(fused.kernels) == 1
        inputs = allocate_inputs(ir)
        scalars = {k: v * 0.1 for k, v in default_scalars(ir).items()}
        reference = execute_reference(ir, inputs, scalars,
                                      time_iterations=3)
        plan = KernelPlan(
            kernel_names=(fused.kernels[0].name,),
            block=(4, 4),
            streaming="serial",
            stream_axis=0,
            time_tile=3,
        )
        got = execute_plan(fused, plan, inputs, scalars)
        assert np.array_equal(reference["uout"], got["uout"])

    def test_fused_pingpong_pair(self):
        from repro.codegen.tiling import pingpong_pair

        fused = maxfuse(_small("denoise", 16))
        assert pingpong_pair(fused, fused.kernels[0]) == ("uout", "uin")
