"""Plan execution with mixed-rank arrays (the SW4 shape).

The addsgd kernels read 1-D stretching/damping arrays alongside the 3-D
fields.  The block executor copies lower-rank arrays whole and
broadcasts them — these tests pin that behaviour against the reference
on a shrunken domain, across plan shapes.
"""

import numpy as np
import pytest

from repro.codegen import KernelPlan
from repro.dsl import parse
from repro.gpu.executor import (
    allocate_inputs,
    default_scalars,
    execute_plan,
    execute_reference,
)
from repro.ir import build_ir
from repro.suite import get


@pytest.fixture(scope="module")
def small_addsgd4():
    text = get("addsgd4").dsl().replace("W=320", "W=14")
    ir = build_ir(parse(text))
    inputs = allocate_inputs(ir)
    scalars = {k: v * 0.1 for k, v in default_scalars(ir).items()}
    reference = execute_reference(ir, inputs, scalars)
    return ir, inputs, scalars, reference


@pytest.mark.parametrize(
    "kw",
    [
        dict(block=(4, 4), streaming="serial", stream_axis=0),
        dict(block=(4, 8), streaming="serial", stream_axis=0,
             unroll=(1, 1, 2)),
        dict(block=(4, 4, 4), streaming="none"),
        dict(block=(4, 4), streaming="concurrent", stream_axis=0,
             concurrent_chunks=2),
        dict(block=(4, 4), streaming="serial", stream_axis=0,
             perspective="mixed"),
    ],
)
def test_addsgd4_plan_matches_reference(small_addsgd4, kw):
    ir, inputs, scalars, reference = small_addsgd4
    plan = KernelPlan(kernel_names=(ir.kernels[0].name,), **kw)
    got = execute_plan(ir, plan, inputs, scalars)
    for comp in range(3):
        assert np.array_equal(reference[f"up{comp}"], got[f"up{comp}"]), kw


def test_addsgd4_folded_plan_matches(small_addsgd4):
    from repro.ir import find_fold_groups
    from repro.tuning.hierarchical import with_fold_groups

    ir, inputs, scalars, reference = small_addsgd4
    groups = find_fold_groups(ir.kernels[0])
    assert groups
    plan = with_fold_groups(
        KernelPlan(kernel_names=(ir.kernels[0].name,), block=(4, 4),
                   streaming="serial", stream_axis=0),
        groups,
    )
    got = execute_plan(ir, plan, inputs, scalars)
    for comp in range(3):
        assert np.allclose(
            reference[f"up{comp}"], got[f"up{comp}"], rtol=1e-13
        )


def test_rhs4center_fission_plans_match():
    """Three per-output kernels launched separately equal the monolith."""
    from repro.codegen import ProgramPlan
    from repro.gpu.executor import execute_program_plan
    from repro.tuning import trivial_fission

    text = get("rhs4center").dsl().replace("W=320", "W=14")
    ir = build_ir(parse(text))
    inputs = allocate_inputs(ir)
    scalars = {k: v * 0.1 for k, v in default_scalars(ir).items()}
    reference = execute_reference(ir, inputs, scalars)
    split = ir.replace(kernels=trivial_fission(ir, ir.kernels[0]))
    plans = tuple(
        KernelPlan(kernel_names=(k.name,), block=(4, 4),
                   streaming="serial", stream_axis=0)
        for k in split.kernels
    )
    got = execute_program_plan(split, ProgramPlan(plans=plans), inputs,
                               scalars)
    for comp in range(3):
        assert np.array_equal(
            reference[f"uacc{comp}"], got[f"uacc{comp}"]
        )
