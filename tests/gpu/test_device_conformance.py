"""Device-conformance harness.

Every profile in the device registry must satisfy the same model
invariants — the registry is only useful if adding a device cannot
silently produce nonsense.  The ``device`` fixture (``conftest.py``)
parametrizes each test over *all* registered profiles, so a new
``register_device()`` call is automatically covered:

* occupancy is monotone in each resource axis (bigger blocks, more
  registers or more shared memory never *increase* residency);
* the register-escalation ladder is ordered: raising ``maxrregcount``
  never increases spill traffic;
* the vectorized family-pricing backend agrees bitwise with the scalar
  simulator on every device;
* infeasible configurations classify onto the same stable RL2xx lint
  codes everywhere;
* tuning winners per device match the committed golden snapshot
  (``golden_winners.json``) — the cross-device regression anchor;
* evaluator memo entries are device-keyed: the same plan priced on two
  profiles never shares a cache entry.
"""

import json
import os

import pytest

from repro.codegen.plan import REGISTER_LEVELS
from repro.gpu.device import DEVICES, P100, V100, device_names, get_device
from repro.gpu.occupancy import occupancy
from repro.gpu.pricing import price_family
from repro.gpu.simulator import PlanInfeasible, plan_occupancy, simulate
from repro.lint.rules_plan import classify_occupancy_failure
from repro.resilience.errors import InfeasiblePlanError
from repro.tuning import PlanEvaluator, tune_kernel
from repro.tuning.evaluator import plan_fingerprint

from .test_pricing import IR, PROTOS, assert_lane_parity

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_winners.json")


def _doubling(lo, hi):
    out = []
    value = lo
    while value <= hi:
        out.append(value)
        value *= 2
    return out


class TestOccupancyMonotonicity:
    def test_blocks_per_sm_non_increasing_in_block_size(self, device):
        previous = None
        for threads in _doubling(device.warp_size,
                                 device.max_threads_per_block):
            occ = occupancy(device, threads, 32, 0)
            assert occ.blocks_per_sm >= 1
            assert occ.warp_size == device.warp_size
            assert occ.active_threads == occ.active_warps * device.warp_size
            if previous is not None:
                assert occ.blocks_per_sm <= previous
            previous = occ.blocks_per_sm

    def test_occupancy_non_increasing_in_registers(self, device):
        threads = min(256, device.max_threads_per_block)
        previous = None
        for regs in _doubling(16, device.max_registers_per_thread):
            try:
                occ = occupancy(device, threads, regs, 0)
            except InfeasiblePlanError:
                # One block alone outgrew the SM: the monotone floor.
                # Every larger footprint must stay infeasible too.
                with pytest.raises(InfeasiblePlanError):
                    occupancy(device, threads,
                              device.max_registers_per_thread, 0)
                break
            if previous is not None:
                assert occ.occupancy <= previous
            previous = occ.occupancy

    def test_occupancy_non_increasing_in_shared_memory(self, device):
        threads = min(256, device.max_threads_per_block)
        previous = None
        for shmem in _doubling(1024, device.shared_mem_per_block):
            try:
                occ = occupancy(device, threads, 64, shmem)
            except InfeasiblePlanError:
                with pytest.raises(InfeasiblePlanError):
                    occupancy(device, threads, 64,
                              device.shared_mem_per_block)
                break
            if previous is not None:
                assert occ.occupancy <= previous
            previous = occ.occupancy


class TestSpillRungOrdering:
    def test_spill_bytes_non_increasing_along_ladder(self, device):
        # An unrolled plan with register demand above the lowest rung:
        # escalating the cap must monotonically shed spill traffic, and
        # the top rung must be spill-free iff demand fits the device.
        plan = PROTOS["none-gmem"].replace(unroll=(1, 2, 2))
        previous = None
        for cap in REGISTER_LEVELS:
            result = simulate(IR, plan.replace(max_registers=cap), device)
            spill = result.counters.spill_bytes
            demand = result.counters.regs_demand
            assert demand > REGISTER_LEVELS[0], "ladder test needs demand"
            if previous is not None:
                assert spill <= previous
            previous = spill
        if demand <= REGISTER_LEVELS[-1]:
            assert previous == 0


class TestPricingParityPerDevice:
    def test_family_lanes_match_scalar(self, device):
        proto = PROTOS["serial-shm"]
        plans = [
            proto.replace(block=block, unroll=unroll, max_registers=cap)
            for block in ((8, 8), (16, 16), (32, 32), (64, 32))
            for unroll in ((), (2,))
            for cap in (32, 255)
        ]
        pricing = price_family(IR, plans, device=device)
        assert len(pricing) == len(plans)
        for plan, lane in zip(pricing.plans, pricing.lanes):
            assert_lane_parity(IR, plan, lane, device=device)


class TestRejectionCodeStability:
    def test_resource_violations_classify_identically(self, device):
        cases = [
            # (threads, regs, shmem, expected RL code)
            (device.max_threads_per_block * 2, 32, 0, "RL202"),
            (device.warp_size, 32, device.shared_mem_per_block + 1, "RL201"),
            (device.warp_size, device.max_registers_per_thread + 1, 0,
             "RL203"),
        ]
        for threads, regs, shmem, expected in cases:
            with pytest.raises(InfeasiblePlanError) as info:
                occupancy(device, threads, regs, shmem)
            assert classify_occupancy_failure(info.value) == expected
            assert info.value.context.get("device") == device.name

    def test_oversized_block_rejects_through_simulator(self, device):
        # 2048 threads exceeds every registered profile's block limit;
        # the screen must reject with the launch-geometry code RL202.
        plan = PROTOS["serial-shm"].replace(block=(64, 32))
        with pytest.raises(PlanInfeasible) as info:
            plan_occupancy(IR, plan, device)
        assert classify_occupancy_failure(info.value.__cause__) == "RL202"


class TestGoldenWinners:
    """Per-device tuning winners, pinned against a committed snapshot.

    The snapshot is the cross-device regression anchor: a model change
    that shifts any device's winner (or its exact time/TFLOPS) must
    regenerate ``golden_winners.json`` deliberately.  Regenerate with::

        PYTHONPATH=src python tests/gpu/regen_golden_winners.py
    """

    @staticmethod
    def winner_entry(device):
        result = tune_kernel(
            IR, PROTOS["serial-shm"], device=device, top_k=2
        )
        best = result.best
        return {
            "fingerprint": plan_fingerprint(best.plan),
            "block": list(best.plan.block),
            "unroll": list(best.plan.unroll),
            "max_registers": best.plan.max_registers,
            "time_s": best.time_s,
            "tflops": best.tflops,
            "evaluations": result.evaluations,
        }

    def test_winner_matches_snapshot(self, device):
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        assert device.name in golden, (
            f"no golden winner for {device.name}; regenerate the snapshot"
        )
        assert self.winner_entry(device) == golden[device.name]

    def test_snapshot_covers_exactly_the_registry(self):
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        assert set(golden) == set(device_names())


class TestEvaluatorDeviceIsolation:
    def test_memo_entries_never_shared_across_devices(self):
        # Same IR, same plan, two devices, one *shared* cache dict: the
        # content-addressed keys must differ, so each engine prices the
        # plan itself and neither reads the other's entry.
        plan = PROTOS["serial-shm"]
        first = PlanEvaluator(device=P100)
        second = PlanEvaluator(device=V100)
        second._cache = first._cache
        assert first._key(IR, plan) != second._key(IR, plan)
        a = first.evaluate(IR, plan)
        before = len(first._cache)
        b = second.evaluate(IR, plan)
        assert len(first._cache) == before + 1
        assert a.time_s != b.time_s  # different silicon, different price

    def test_all_profile_keys_distinct(self):
        plan = PROTOS["serial-shm"]
        keys = {
            PlanEvaluator(device=get_device(name))._key(IR, plan)
            for name in DEVICES
        }
        assert len(keys) == len(DEVICES)
