"""Regenerate the per-device golden-winner snapshot.

Run from the repository root after a *deliberate* model change::

    PYTHONPATH=src python tests/gpu/regen_golden_winners.py

The diff of ``golden_winners.json`` then documents exactly which
devices' winners moved and by how much.
"""

import json
import os
import sys

sys.path.insert(
    0, os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
)

from repro.gpu.device import device_names, get_device  # noqa: E402

from tests.gpu.test_device_conformance import (  # noqa: E402
    GOLDEN_PATH,
    TestGoldenWinners,
)


def main() -> None:
    golden = {
        name: TestGoldenWinners.winner_entry(get_device(name))
        for name in device_names()
    }
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, entry in golden.items():
        print(f"{name}: {entry['fingerprint']} "
              f"block={entry['block']} tflops={entry['tflops']:.4f}")


if __name__ == "__main__":
    main()
