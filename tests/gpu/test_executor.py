"""Functional-executor tests: plans must match the reference bitwise."""

import numpy as np
import pytest

from repro.codegen.plan import KernelPlan, ProgramPlan
from repro.dsl import parse
from repro.ir import build_ir, find_fold_groups
from repro.gpu.executor import (
    allocate_inputs,
    default_scalars,
    execute_plan,
    execute_program_plan,
    execute_reference,
    interior_region,
    program_pingpong,
    run_kernel,
)


@pytest.fixture
def jac(jacobi_small_ir):
    ir = jacobi_small_ir
    return ir, allocate_inputs(ir), default_scalars(ir)


class TestReference:
    def test_boundary_carries_input(self, jac):
        ir, inputs, scalars = jac
        out = execute_reference(ir, inputs, scalars, time_iterations=1)["out"]
        # Boundary-carry: non-interior points copy the input.
        assert np.array_equal(out[0, :, :], inputs["in"][0, :, :])
        assert np.array_equal(out[:, :, -1], inputs["in"][:, :, -1])

    def test_interior_updated(self, jac):
        ir, inputs, scalars = jac
        out = execute_reference(ir, inputs, scalars, time_iterations=1)["out"]
        assert not np.array_equal(out[1:-1, 1:-1, 1:-1],
                                  inputs["in"][1:-1, 1:-1, 1:-1])

    def test_matches_manual_jacobi(self, jac):
        ir, inputs, scalars = jac
        out = execute_reference(ir, inputs, scalars, time_iterations=1)["out"]
        A = inputs["in"]
        a, b, h2inv = scalars["a"], scalars["b"], scalars["h2inv"]
        c = b * h2inv
        manual = a * A[1:-1, 1:-1, 1:-1] - c * (
            A[1:-1, 1:-1, 2:]
            + A[1:-1, 1:-1, :-2]
            + A[1:-1, 2:, 1:-1]
            + A[1:-1, :-2, 1:-1]
            + A[2:, 1:-1, 1:-1]
            + A[:-2, 1:-1, 1:-1]
            - A[1:-1, 1:-1, 1:-1] * 6.0
        )
        assert np.allclose(out[1:-1, 1:-1, 1:-1], manual, rtol=1e-14)

    def test_iteration_changes_result(self, jac):
        ir, inputs, scalars = jac
        one = execute_reference(ir, inputs, scalars, time_iterations=1)["out"]
        two = execute_reference(ir, inputs, scalars, time_iterations=2)["out"]
        assert not np.array_equal(one, two)

    def test_inputs_not_mutated(self, jac):
        ir, inputs, scalars = jac
        snapshot = {k: v.copy() for k, v in inputs.items()}
        execute_reference(ir, inputs, scalars, time_iterations=3)
        for name, value in snapshot.items():
            assert np.array_equal(inputs[name], value)

    def test_pingpong_pair(self, jac):
        ir, _, _ = jac
        assert program_pingpong(ir) == ("out", "in")


class TestPlanMatchesReference:
    def _check(self, ir, plan, inputs, scalars, steps):
        ref = execute_reference(ir, inputs, scalars, time_iterations=steps)
        got = execute_plan(ir, plan, inputs, scalars)
        assert np.array_equal(ref["out"], got["out"])

    def test_single_step(self, jac):
        ir, inputs, scalars = jac
        plan = KernelPlan(kernel_names=("jacobi.0",), block=(8, 8),
                          streaming="serial", stream_axis=0)
        self._check(ir, plan, inputs, scalars, 1)

    @pytest.mark.parametrize("time_tile", [2, 3, 4])
    def test_time_tiled(self, jac, time_tile):
        ir, inputs, scalars = jac
        plan = KernelPlan(kernel_names=("jacobi.0",), block=(8, 8),
                          streaming="serial", stream_axis=0,
                          time_tile=time_tile)
        self._check(ir, plan, inputs, scalars, time_tile)

    @pytest.mark.parametrize("block", [(4, 4), (8, 4), (16, 16), (5, 7)])
    def test_block_shapes(self, jac, block):
        ir, inputs, scalars = jac
        plan = KernelPlan(kernel_names=("jacobi.0",), block=block,
                          streaming="serial", stream_axis=0, time_tile=2)
        self._check(ir, plan, inputs, scalars, 2)

    def test_non_streaming_3d_tiles(self, jac):
        ir, inputs, scalars = jac
        plan = KernelPlan(kernel_names=("jacobi.0",), block=(4, 8, 8),
                          streaming="none", time_tile=2)
        self._check(ir, plan, inputs, scalars, 2)

    def test_unroll_does_not_change_semantics(self, jac):
        # Unroll only redistributes work across threads; tile extents grow.
        ir, inputs, scalars = jac
        plan = KernelPlan(kernel_names=("jacobi.0",), block=(4, 4),
                          streaming="serial", stream_axis=0,
                          unroll=(1, 2, 2), time_tile=2)
        self._check(ir, plan, inputs, scalars, 2)


class TestSchedules:
    def test_various_splits_agree(self, jac):
        ir, inputs, scalars = jac
        base = KernelPlan(kernel_names=("jacobi.0",), block=(8, 8),
                          streaming="serial", stream_axis=0)
        ref = execute_reference(ir, inputs, scalars, time_iterations=5)
        for split in [(1, 1, 1, 1, 1), (2, 3), (3, 2), (4, 1), (5,)]:
            plans = tuple(base.replace(time_tile=t) for t in split)
            sched = ProgramPlan(plans=plans)
            got = execute_program_plan(ir, sched, inputs, scalars)
            assert np.array_equal(ref["out"], got["out"]), split

    def test_launch_counts(self, jac):
        ir, inputs, scalars = jac
        base = KernelPlan(kernel_names=("jacobi.0",), block=(8, 8),
                          streaming="serial", stream_axis=0, time_tile=2)
        sched = ProgramPlan(plans=(base,), launch_counts=(3,))
        ref = execute_reference(ir, inputs, scalars, time_iterations=6)
        got = execute_program_plan(ir, sched, inputs, scalars)
        assert np.array_equal(ref["out"], got["out"])


DAG_SRC = """
parameter N=20;
iterator k, j, i;
double a[N,N,N], b[N,N,N], c[N,N,N], w;
copyin a, w;
stencil blur (out, inp, w) {
  out[k][j][i] = w * (inp[k][j][i+1] + inp[k][j][i-1] + inp[k][j+1][i]);
}
stencil sharpen (out, inp) {
  out[k][j][i] = 2.0*inp[k][j][i] - 0.5*(inp[k+1][j][i] + inp[k-1][j][i]);
}
blur (b, a, w);
sharpen (c, b);
copyout c;
"""


class TestDagFusion:
    def test_fused_matches_reference(self):
        ir = build_ir(parse(DAG_SRC))
        inputs = allocate_inputs(ir)
        scalars = default_scalars(ir)
        ref = execute_reference(ir, inputs, scalars)
        plan = KernelPlan(kernel_names=("blur.0", "sharpen.0"), block=(4, 8),
                          streaming="serial", stream_axis=0)
        got = execute_plan(ir, plan, inputs, scalars)
        assert np.array_equal(ref["c"], got["c"])

    def test_unfused_matches_reference(self):
        ir = build_ir(parse(DAG_SRC))
        inputs = allocate_inputs(ir)
        scalars = default_scalars(ir)
        ref = execute_reference(ir, inputs, scalars)
        sched = ProgramPlan(
            plans=(
                KernelPlan(kernel_names=("blur.0",), block=(8, 8)),
                KernelPlan(kernel_names=("sharpen.0",), block=(8, 8)),
            )
        )
        got = execute_program_plan(ir, sched, inputs, scalars)
        assert np.array_equal(ref["c"], got["c"])


FOLD_SRC = """
parameter N=16;
iterator k, j, i;
double A[N,N,N], B[N,N,N], mu[N,N,N], la[N,N,N];
copyin A, mu, la;
stencil s (B, A, mu, la) {
  B[k][j][i] = mu[k][j][i+1]*la[k][j][i+1] + mu[k][j][i-1]*la[k][j][i-1]
    + A[k][j][i];
}
s (B, A, mu, la);
copyout B;
"""


class TestFoldingSemantics:
    def test_folded_plan_matches_reference(self):
        ir = build_ir(parse(FOLD_SRC))
        inputs = allocate_inputs(ir)
        scalars = default_scalars(ir)
        ref = execute_reference(ir, inputs, scalars)
        groups = find_fold_groups(ir.kernels[0])
        assert groups
        plan = KernelPlan(kernel_names=("s.0",), block=(8, 8),
                          streaming="serial", stream_axis=0,
                          fold_groups=groups)
        got = execute_plan(ir, plan, inputs, scalars)
        assert np.allclose(ref["B"], got["B"], rtol=1e-14)


class TestRunKernelRegions:
    def test_interior_region(self, jac):
        ir, _, _ = jac
        region = interior_region(ir, ir.kernels[0], (24, 24, 24))
        assert region == ((1, 23), (1, 23), (1, 23))

    def test_empty_region_is_noop(self, jac):
        ir, inputs, scalars = jac
        arrays = {k: v.copy() for k, v in inputs.items()}
        run_kernel(ir, ir.kernels[0], arrays, scalars,
                   region=((5, 5), (1, 23), (1, 23)))
        assert np.array_equal(arrays["out"], inputs["out"])
