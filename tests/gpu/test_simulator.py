"""Tests for the analytical kernel simulator (counter + timing model)."""

import pytest

from repro.codegen.plan import KernelPlan
from repro.gpu import P100, simulate
from repro.gpu.simulator import PlanInfeasible


def _plan(**kw):
    base = dict(
        kernel_names=("jacobi.0",),
        block=(32, 16),
        streaming="serial",
        stream_axis=0,
        placements=(("in", "shmem"),),
    )
    base.update(kw)
    return KernelPlan(**base)


class TestCounters:
    def test_useful_flops(self, jacobi_ir):
        result = simulate(jacobi_ir, _plan())
        assert result.counters.useful_flops == 11 * 512**3

    def test_recompute_grows_flops(self, jacobi_ir):
        single = simulate(jacobi_ir, _plan())
        fused = simulate(jacobi_ir, _plan(time_tile=2))
        # Fused launch does 2 applications, plus halo recomputation.
        assert fused.counters.flops > 2 * single.counters.flops
        assert fused.counters.useful_flops == 2 * single.counters.useful_flops

    def test_write_bytes(self, jacobi_ir):
        result = simulate(jacobi_ir, _plan())
        assert result.counters.dram_write_bytes == pytest.approx(512**3 * 8)

    def test_fusion_reduces_dram_per_step(self, jacobi_ir):
        single = simulate(jacobi_ir, _plan())
        fused = simulate(jacobi_ir, _plan(time_tile=3, block=(16, 16)))
        per_step_single = single.counters.dram_bytes
        per_step_fused = fused.counters.dram_bytes / 3
        assert per_step_fused < per_step_single * 0.6

    def test_oi_dram_rises_with_fusion(self, jacobi_ir):
        ois = []
        for t in (1, 2, 3):
            result = simulate(jacobi_ir, _plan(time_tile=t, block=(16, 16)))
            ois.append(result.counters.oi("dram"))
        assert ois[0] < ois[1] < ois[2]

    def test_shmem_version_has_shm_traffic(self, jacobi_ir):
        result = simulate(jacobi_ir, _plan())
        assert result.counters.shm_bytes > 0

    def test_gmem_version_no_shm_traffic(self, jacobi_ir):
        result = simulate(jacobi_ir, _plan(placements=()))
        assert result.counters.shm_bytes == 0
        assert result.counters.shmem_per_block == 0

    def test_gmem_has_more_tex_traffic(self, jacobi_ir):
        shm = simulate(jacobi_ir, _plan())
        gmem = simulate(jacobi_ir, _plan(placements=()))
        assert gmem.counters.tex_bytes > shm.counters.tex_bytes

    def test_no_spills_for_simple_stencil(self, jacobi_ir):
        result = simulate(jacobi_ir, _plan())
        assert not result.counters.has_spills
        assert result.counters.spill_bytes == 0

    def test_spills_when_register_capped(self, jacobi_ir):
        result = simulate(jacobi_ir, _plan(max_registers=16))
        assert result.counters.has_spills
        assert result.counters.spill_bytes > 0

    def test_sync_counted_only_with_shmem(self, jacobi_ir):
        shm = simulate(jacobi_ir, _plan())
        gmem = simulate(jacobi_ir, _plan(placements=()))
        assert shm.counters.syncs > 0
        assert gmem.counters.syncs == 0


class TestTiming:
    def test_positive_time(self, jacobi_ir):
        result = simulate(jacobi_ir, _plan())
        assert result.time_ms > 0
        assert 0 < result.tflops < 4.7

    def test_bandwidth_bound_baseline(self, jacobi_ir):
        result = simulate(jacobi_ir, _plan())
        assert result.timing.bound_resource in ("dram", "tex")

    def test_fusion_improves_bandwidth_bound_stencil(self, jacobi_ir):
        t1 = simulate(jacobi_ir, _plan())
        t3 = simulate(jacobi_ir, _plan(time_tile=3, block=(32, 32)))
        assert t3.tflops > t1.tflops

    def test_deterministic(self, jacobi_ir):
        a = simulate(jacobi_ir, _plan())
        b = simulate(jacobi_ir, _plan())
        assert a.time_s == b.time_s
        assert a.counters == b.counters

    def test_total_includes_launch_overhead(self, jacobi_ir):
        result = simulate(jacobi_ir, _plan())
        assert result.timing.total_s >= result.timing.launch_s


class TestStreamingModes:
    def test_global_stream_worse_than_global(self, jacobi_ir):
        """Paper §VIII-F: streaming without shared memory hurts DRAM
        locality and loses to plain 3D tiling."""
        gstream = simulate(
            jacobi_ir, _plan(placements=(), streaming="serial")
        )
        gtiled = simulate(
            jacobi_ir,
            _plan(placements=(), streaming="none", block=(4, 16, 16)),
        )
        assert gstream.counters.dram_read_bytes > gtiled.counters.dram_read_bytes

    def test_concurrent_streaming_increases_blocks(self, jacobi_ir):
        serial = simulate(jacobi_ir, _plan())
        conc = simulate(
            jacobi_ir, _plan(streaming="concurrent", concurrent_chunks=4)
        )
        assert conc.counters.blocks == 4 * serial.counters.blocks

    def test_concurrent_streaming_loads_overlap(self, jacobi_ir):
        serial = simulate(jacobi_ir, _plan())
        conc = simulate(
            jacobi_ir, _plan(streaming="concurrent", concurrent_chunks=4)
        )
        # Chunked sweeps reload halo planes at chunk seams.
        assert conc.counters.tex_bytes > serial.counters.tex_bytes


class TestPerspectives:
    def test_mixed_reduces_tex_vs_output(self, jacobi_ir):
        out = simulate(jacobi_ir, _plan(perspective="output"))
        mixed = simulate(jacobi_ir, _plan(perspective="mixed"))
        assert mixed.counters.tex_bytes < out.counters.tex_bytes

    def test_input_perspective_more_threads(self, jacobi_ir):
        out = simulate(jacobi_ir, _plan(perspective="output"))
        inp = simulate(jacobi_ir, _plan(perspective="input"))
        assert inp.counters.threads_per_block > out.counters.threads_per_block


class TestUnrollAndPrefetch:
    def test_unroll_raises_register_use(self, jacobi_ir):
        base = simulate(jacobi_ir, _plan())
        unrolled = simulate(jacobi_ir, _plan(unroll=(1, 2, 2)))
        assert unrolled.counters.regs_per_thread > base.counters.regs_per_thread

    def test_blocked_unroll_reduces_gmem_loads(self, jacobi_ir):
        base = simulate(jacobi_ir, _plan(placements=()))
        unrolled = simulate(
            jacobi_ir, _plan(placements=(), unroll=(1, 1, 4))
        )
        # Loads per launch: unrolled covers same domain with fewer loads.
        assert unrolled.counters.tex_bytes < base.counters.tex_bytes

    def test_cyclic_unroll_no_load_reuse(self, jacobi_ir):
        blocked = simulate(
            jacobi_ir, _plan(placements=(), unroll=(1, 1, 4))
        )
        cyclic = simulate(
            jacobi_ir,
            _plan(placements=(), unroll=(1, 1, 4), unroll_blocked=False),
        )
        assert cyclic.counters.tex_bytes > blocked.counters.tex_bytes

    def test_prefetch_adds_register(self, jacobi_ir):
        base = simulate(jacobi_ir, _plan())
        pref = simulate(jacobi_ir, _plan(prefetch=True))
        assert pref.counters.regs_per_thread >= base.counters.regs_per_thread


class TestInfeasible:
    def test_oversized_block(self, jacobi_ir):
        with pytest.raises(PlanInfeasible):
            simulate(jacobi_ir, _plan(block=(64, 64)))

    def test_shmem_explosion(self, jacobi_ir):
        # time_tile 8 at 32x32 needs more than 48KB of shared memory.
        with pytest.raises(PlanInfeasible):
            simulate(jacobi_ir, _plan(time_tile=8, block=(32, 32)))
