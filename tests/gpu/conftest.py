"""Shared programs and device fixtures for GPU-substrate tests."""

import os

import pytest

from repro.dsl import parse
from repro.gpu.device import device_names, get_device
from repro.ir import build_ir


@pytest.fixture(params=device_names())
def device(request):
    """Every registered device profile, one test instance each.

    The conformance harness runs its invariants against each profile —
    registering a new device automatically subjects it to the full
    suite.  Setting ``REPRO_CONFORMANCE_DEVICE`` restricts the sweep to
    one profile (the CI device matrix runs one job per device).
    """
    only = os.environ.get("REPRO_CONFORMANCE_DEVICE")
    if only and request.param.upper() != only.upper():
        pytest.skip(f"conformance run restricted to {only}")
    return get_device(request.param)

JACOBI_TMPL = """
parameter L={n}, M={n}, N={n};
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin in, h2inv, a, b;
iterate 12;
stencil jacobi (B, A, h2inv, a, b) {{
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1] + A[k][j][i-1]
    + A[k][j+1][i] + A[k][j-1][i] + A[k+1][j][i] + A[k-1][j][i]
    - A[k][j][i]*6.0);
}}
jacobi (out, in, h2inv, a, b);
copyout out;
"""


@pytest.fixture
def jacobi_ir():
    """Full-size jacobi (512^3) for counter-model tests."""
    return build_ir(parse(JACOBI_TMPL.format(n=512)))


@pytest.fixture
def jacobi_small_ir():
    """Small jacobi (24^3) for functional-executor tests."""
    return build_ir(parse(JACOBI_TMPL.format(n=24)))
