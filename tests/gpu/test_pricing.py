"""Scalar-vs-vectorized pricing parity.

The family-pricing backend's contract is *bitwise* agreement with the
scalar path: for every lane, ``price_family`` must return either a
:class:`SimulationResult` equal field-for-field to ``simulate()``, or
the exact occupancy rejection (message, context, RL2xx lint code) that
``plan_occupancy`` raises.  The Hypothesis suite sweeps the grid knobs
(block, unroll, unroll_blocked, max_registers) over several structural
prototypes — streaming modes, perspectives, prefetch — and checks every
lane against a fresh scalar evaluation.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.codegen.plan import (
    KernelPlan,
    PERSPECTIVE_INPUT,
    PERSPECTIVE_MIXED,
    REGISTER_LEVELS,
    STREAM_CONCURRENT,
)
from repro.dsl import parse
from repro.gpu import P100
from repro.gpu.device import DEVICES, device_names, get_device
from repro.gpu.pricing import (
    GRID_AXES,
    family_structure,
    price_family,
    priced_lane_count,
)
from repro.gpu.registers import register_demand
from repro.gpu.simulator import PlanInfeasible, plan_occupancy, simulate
from repro.ir import build_ir
from repro.lint.rules_plan import classify_occupancy_failure
from repro.resilience.errors import UsageError


def _star_ir(size=192):
    return build_ir(parse(f"""
    parameter L={size}, M={size}, N={size};
    iterator k, j, i;
    double in[L,M,N], out[L,M,N], a;
    copyin in, a;
    stencil s (B, A, a) {{
      B[k][j][i] = a * (A[k][j][i+1] + A[k][j][i-1] + A[k+1][j][i]
        + A[k-1][j][i] + A[k][j+1][i] + A[k][j-1][i]);
    }}
    s (out, in, a);
    copyout out;
    """))


IR = _star_ir()

#: Structural prototypes: every branch the vectorized backend resolves
#: at :class:`FamilyStructure` build time gets at least one family.
PROTOS = {
    "serial-shm": KernelPlan(
        kernel_names=("s.0",), block=(16, 16), streaming="serial",
        stream_axis=0, placements=(("in", "shmem"),),
    ),
    "serial-prefetch": KernelPlan(
        kernel_names=("s.0",), block=(16, 16), streaming="serial",
        stream_axis=0, placements=(("in", "shmem"),), prefetch=True,
    ),
    "concurrent": KernelPlan(
        kernel_names=("s.0",), block=(16, 16), streaming=STREAM_CONCURRENT,
        stream_axis=0, concurrent_chunks=4, placements=(("in", "shmem"),),
    ),
    "none-gmem": KernelPlan(
        kernel_names=("s.0",), block=(4, 8, 8), streaming="none",
    ),
    "input-persp": KernelPlan(
        kernel_names=("s.0",), block=(16, 16), streaming="serial",
        stream_axis=0, placements=(("in", "shmem"),),
        perspective=PERSPECTIVE_INPUT,
    ),
    "mixed-persp": KernelPlan(
        kernel_names=("s.0",), block=(16, 16), streaming="serial",
        stream_axis=0, placements=(("in", "shmem"),),
        perspective=PERSPECTIVE_MIXED,
    ),
}

#: Tile menus per block rank.  Oversized entries ((64, 32) is 2048
#: threads; (32, 32) with unroll can blow the shared-memory budget) are
#: deliberate: rejection lanes must classify identically too.
_BLOCKS_2D = [(8, 8), (16, 8), (16, 16), (32, 8), (32, 16), (32, 32), (64, 32)]
_BLOCKS_3D = [(2, 8, 8), (4, 8, 8), (4, 16, 16), (8, 8, 16), (16, 16, 8)]
_UNROLLS = [(), (1,), (2,), (4,), (1, 2), (2, 2), (1, 1, 2)]
_MAXREGS = list(REGISTER_LEVELS) + [48, 96, 200]


def scalar_lane(ir, plan, device=P100):
    """The scalar reference: demand + occupancy screen + simulate."""
    demand = register_demand(ir, plan)
    try:
        plan_occupancy(ir, plan, device)
    except PlanInfeasible as exc:
        cause = exc.__cause__
        return {
            "demand": demand,
            "result": None,
            "message": str(exc),
            "context": dict(getattr(cause, "context", None) or {}),
            "code": classify_occupancy_failure(cause),
        }
    return {"demand": demand, "result": simulate(ir, plan, device)}


def assert_lane_parity(ir, plan, lane, device=P100):
    want = scalar_lane(ir, plan, device)
    assert lane.demand == want["demand"], plan.describe()
    if want["result"] is None:
        assert lane.result is None, (
            f"{plan.describe()}: scalar infeasible, lane feasible"
        )
        assert lane.occ_message == want["message"], plan.describe()
        assert lane.occ_context == want["context"], plan.describe()
        assert lane.occ_code == want["code"], plan.describe()
        assert lane.occ_code is not None
        assert lane.occ_code.startswith("RL2"), lane.occ_code
    else:
        assert lane.result is not None, (
            f"{plan.describe()}: scalar feasible, lane rejected: "
            f"{lane.occ_message}"
        )
        got, ref = lane.result, want["result"]
        assert got.counters == ref.counters, plan.describe()
        assert got.occupancy == ref.occupancy, plan.describe()
        assert got.timing == ref.timing, plan.describe()
        assert got.time_s == ref.time_s and got.tflops == ref.tflops


@st.composite
def family_grids(draw):
    proto_name = draw(st.sampled_from(sorted(PROTOS)))
    proto = PROTOS[proto_name]
    blocks = _BLOCKS_3D if len(proto.block) == 3 else _BLOCKS_2D
    lanes = draw(
        st.lists(
            st.tuples(
                st.sampled_from(blocks),
                st.sampled_from(_UNROLLS),
                st.booleans(),
                st.sampled_from(_MAXREGS),
            ),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    return proto, lanes


class TestBitwiseParity:
    @settings(max_examples=30, deadline=None)
    @given(family_grids())
    def test_price_family_matches_scalar_loop(self, family):
        proto, lanes = family
        plans = [
            proto.replace(
                block=block, unroll=unroll, unroll_blocked=blocked,
                max_registers=maxreg,
            )
            for block, unroll, blocked, maxreg in lanes
        ]
        pricing = price_family(IR, plans)
        assert len(pricing) == len(plans)
        for plan, lane in zip(pricing.plans, pricing.lanes):
            assert_lane_parity(IR, plan, lane)

    def test_grid_expansion_covers_cross_product(self):
        proto = PROTOS["serial-shm"]
        grid = {"block": [(16, 16), (32, 8)], "max_registers": [64, 255]}
        pricing = price_family(IR, proto, grid=grid)
        assert len(pricing) == 4
        seen = {(p.block, p.max_registers) for p in pricing.plans}
        assert seen == {
            ((16, 16), 64), ((16, 16), 255), ((32, 8), 64), ((32, 8), 255),
        }
        for plan, lane in zip(pricing.plans, pricing.lanes):
            assert_lane_parity(IR, plan, lane)

    def test_rejection_lane_classifies_like_lint(self):
        # 2048 threads per block: the occupancy screen must reject this
        # lane with the same RL2xx code the scalar path produces.
        proto = PROTOS["serial-shm"]
        pricing = price_family(IR, [proto.replace(block=(64, 32))])
        (lane,) = pricing.lanes
        assert not lane.feasible
        assert_lane_parity(IR, proto.replace(block=(64, 32)), lane)

    def test_table_mirrors_lanes(self):
        proto = PROTOS["serial-shm"]
        plans = [
            proto.replace(block=b, max_registers=m)
            for b in ((16, 16), (32, 8), (64, 32)) for m in (64, 255)
        ]
        pricing = price_family(IR, plans)
        table = pricing.table
        assert len(table) == len(plans)
        best = pricing.best_index()
        assert best is not None
        best_t = min(
            lane.result.time_s for lane in pricing.lanes if lane.feasible
        )
        assert pricing.lanes[best].result.time_s == best_t
        for row, lane in zip(table, pricing.lanes):
            assert bool(row["feasible"]) == lane.feasible
            assert int(row["reg_demand"]) == lane.demand
            if lane.feasible:
                assert float(row["time_s"]) == lane.result.time_s
                assert float(row["tflops"]) == lane.result.tflops
            else:
                assert row["rejection"] == (lane.occ_code or "")


class TestDeviceParity:
    """The bitwise contract holds on *every* registered device profile.

    The vectorized backend reads a dozen device knobs (warp width,
    transaction sector, spill rate, scheduler count, ...); each must be
    threaded identically into the lane arithmetic and the scalar path,
    on NVIDIA and AMD-like profiles alike.
    """

    @settings(max_examples=40, deadline=None)
    @given(family_grids(), st.sampled_from(sorted(DEVICES)))
    def test_price_family_matches_scalar_on_all_devices(self, family, name):
        device = get_device(name)
        proto, lanes = family
        plans = [
            proto.replace(
                block=block, unroll=unroll, unroll_blocked=blocked,
                max_registers=maxreg,
            )
            for block, unroll, blocked, maxreg in lanes
        ]
        pricing = price_family(IR, plans, device=device)
        assert len(pricing) == len(plans)
        for plan, lane in zip(pricing.plans, pricing.lanes):
            assert_lane_parity(IR, plan, lane, device=device)

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(sorted(DEVICES)), st.data())
    def test_rejection_codes_stable_on_all_devices(self, name, data):
        # Build a footprint that violates exactly one device limit and
        # check the classification is the documented RL2xx code with
        # the device's name in the message — for every profile,
        # including wavefront-64 / LDS ones whose thresholds differ.
        from repro.gpu.occupancy import occupancy
        from repro.resilience.errors import InfeasiblePlanError

        device = get_device(name)
        kind = data.draw(
            st.sampled_from(["threads", "shmem", "registers"]), label="kind"
        )
        threads, regs, shmem = device.warp_size, 32, 0
        if kind == "threads":
            threads = device.max_threads_per_block * data.draw(
                st.integers(min_value=2, max_value=8), label="factor"
            )
            expected = "RL202"
        elif kind == "shmem":
            shmem = device.shared_mem_per_block + data.draw(
                st.integers(min_value=1, max_value=1 << 20), label="extra"
            )
            expected = "RL201"
        else:
            regs = device.max_registers_per_thread + data.draw(
                st.integers(min_value=1, max_value=256), label="extra"
            )
            expected = "RL203"
        with pytest.raises(InfeasiblePlanError) as info:
            occupancy(device, threads, regs, shmem)
        assert classify_occupancy_failure(info.value) == expected
        assert info.value.context.get("device") == device.name
        # The operator-facing message names the offending device.
        assert f"device={device.name}" in info.value.describe()

    def test_registry_names_resolve(self):
        for name in device_names():
            assert get_device(name).name == name
            assert get_device(name.lower()) is get_device(name)


class TestSpillFreeResolution:
    LEVEL_LISTS = [
        list(REGISTER_LEVELS),
        [255],
        [64, 64, 128],        # duplicates
        [128, 32, 255, 64],   # unsorted
        [32],                 # likely nothing fits
    ]

    @pytest.mark.parametrize("levels", LEVEL_LISTS)
    def test_positions_match_scalar_ladder(self, levels):
        proto = PROTOS["serial-shm"]
        structure = family_structure(IR, proto)
        plans = [
            proto.replace(block=b, unroll=u)
            for b in ((8, 8), (16, 16), (32, 16), (32, 32))
            for u in ((), (2,), (1, 2))
        ]
        demands, positions, lanes = structure.price_spill_free(plans, levels)
        assert len(demands) == len(positions) == len(lanes) == len(plans)
        for i, plan in enumerate(plans):
            demand = register_demand(IR, plan)
            assert int(demands[i]) == demand
            level = next((lv for lv in levels if demand <= lv), None)
            want = -1 if level is None else levels.index(level)
            assert int(positions[i]) == want, plan.describe()
            if want >= 0:
                # The lane was priced at the resolved (spill-free) cap,
                # not the prototype's 255.
                resolved = plan.replace(max_registers=levels[want])
                assert_lane_parity(IR, resolved, lanes[i])

    def test_lane_counter_advances(self):
        proto = PROTOS["serial-shm"]
        before = priced_lane_count()
        price_family(IR, [proto, proto.replace(block=(32, 8))])
        assert priced_lane_count() == before + 2


class TestUsageErrors:
    def test_non_grid_axis_rejected(self):
        with pytest.raises(UsageError, match="structure"):
            price_family(IR, PROTOS["serial-shm"], grid={"prefetch": [True]})
        assert "block" in GRID_AXES

    def test_mixed_structural_keys_rejected(self):
        with pytest.raises(UsageError, match="structural"):
            price_family(
                IR,
                [PROTOS["serial-shm"], PROTOS["serial-prefetch"]],
            )

    def test_empty_family_rejected(self):
        with pytest.raises(UsageError, match="at least one"):
            price_family(IR, [])

    def test_grid_with_plan_list_rejected(self):
        with pytest.raises(UsageError, match="grid"):
            price_family(
                IR, [PROTOS["serial-shm"]], grid={"max_registers": [64]}
            )


class TestBackendSmoke:
    def test_vectorized_backend_imports_and_prices(self):
        # Satellite guard for the numpy>=1.23 runtime dependency: the
        # backend must import against the installed numpy and price a
        # minimal family end to end.
        import numpy

        import repro.gpu.pricing as pricing_module

        assert pricing_module.np is numpy
        major, minor = (int(x) for x in numpy.__version__.split(".")[:2])
        assert (major, minor) >= (1, 23)
        pricing = price_family(IR, [PROTOS["serial-shm"]])
        (lane,) = pricing.lanes
        assert lane.feasible and lane.result.time_s > 0
