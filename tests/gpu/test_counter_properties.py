"""Property-style invariants of the counter model."""

import pytest

from repro.codegen import KernelPlan
from repro.dsl import parse
from repro.gpu import P100, simulate
from repro.ir import build_ir


def _ir(size):
    return build_ir(parse(f"""
    parameter L={size}, M={size}, N={size};
    iterator k, j, i;
    double in[L,M,N], out[L,M,N], a;
    copyin in, a;
    stencil s (B, A, a) {{
      B[k][j][i] = a * (A[k][j][i+1] + A[k][j][i-1] + A[k+1][j][i]
        + A[k-1][j][i] + A[k][j+1][i] + A[k][j-1][i]);
    }}
    s (out, in, a);
    copyout out;
    """))


def _plan(**kw):
    base = dict(
        kernel_names=("s.0",),
        block=(16, 16),
        streaming="serial",
        stream_axis=0,
        placements=(("in", "shmem"),),
    )
    base.update(kw)
    return KernelPlan(**base)


class TestScaling:
    def test_counters_scale_with_domain(self):
        small = simulate(_ir(128), _plan())
        large = simulate(_ir(256), _plan())
        ratio = large.counters.useful_flops / small.counters.useful_flops
        assert ratio == pytest.approx(8.0)
        assert large.counters.dram_write_bytes == pytest.approx(
            8 * small.counters.dram_write_bytes
        )

    def test_throughput_stabilizes_at_scale(self):
        # Small grids underutilize the device (too few blocks for the
        # resident capacity); once the grid saturates it, throughput is
        # size-independent.
        small = simulate(_ir(128), _plan())
        mid = simulate(_ir(384), _plan())
        big = simulate(_ir(512), _plan())
        assert small.tflops < mid.tflops  # starvation at small sizes
        assert big.tflops == pytest.approx(mid.tflops, rel=0.05)

    def test_bigger_tiles_reduce_halo_overhead(self):
        ir = _ir(256)
        small = simulate(ir, _plan(block=(8, 8)))
        large = simulate(ir, _plan(block=(32, 32)))
        small_redundancy = small.counters.flops / small.counters.useful_flops
        large_redundancy = large.counters.flops / large.counters.useful_flops
        assert large_redundancy <= small_redundancy

    def test_time_is_positive_and_finite(self):
        result = simulate(_ir(128), _plan())
        assert 0 < result.time_s < 10


class TestConservation:
    def test_dram_never_below_unique_compulsory(self):
        ir = _ir(256)
        result = simulate(ir, _plan())
        compulsory = 2 * 256**3 * 8  # read in once, write out once
        assert result.counters.dram_bytes >= compulsory * 0.99

    def test_buffering_trades_tex_for_shm(self):
        ir = _ir(256)
        buffered = simulate(ir, _plan())
        direct = simulate(ir, _plan(placements=()))
        assert buffered.counters.tex_bytes < direct.counters.tex_bytes
        assert buffered.counters.shm_bytes > direct.counters.shm_bytes

    def test_oi_definitions(self):
        result = simulate(_ir(128), _plan())
        counters = result.counters
        assert counters.oi("dram") == pytest.approx(
            counters.flops / counters.dram_bytes
        )
        assert counters.oi("tex") == pytest.approx(
            counters.flops / counters.tex_bytes
        )


class TestTimingComposition:
    def test_total_at_least_max_component(self):
        result = simulate(_ir(256), _plan())
        timing = result.timing
        assert timing.total_s >= max(
            timing.compute_s, timing.dram_s, timing.tex_s, timing.shm_s
        )

    def test_bound_resource_is_argmax(self):
        result = simulate(_ir(256), _plan())
        timing = result.timing
        values = {
            "compute": timing.compute_s,
            "dram": timing.dram_s,
            "tex": timing.tex_s,
            "shm": timing.shm_s,
            "latency": timing.latency_s,
        }
        assert values[timing.bound_resource] == max(values.values())
