"""Executor coverage for non-simple subscripts.

Constant subscripts (``A[0][j][i]``) and skewed affine subscripts
(``A[k-j][j][i]``) take dedicated paths in the expression frame; these
tests pin them against hand-computed NumPy.
"""

import numpy as np
import pytest

from repro.dsl import parse
from repro.gpu.executor import (
    allocate_inputs,
    default_scalars,
    execute_reference,
)
from repro.ir import build_ir


class TestConstantSubscript:
    SRC = """
    parameter N=12;
    iterator k, j, i;
    double A[N,N,N], B[N,N,N];
    copyin A;
    stencil s (B, A) {
      B[k][j][i] = A[0][j][i] + A[k][j][i+1];
    }
    s (B, A);
    copyout B;
    """

    def test_reads_fixed_plane(self):
        ir = build_ir(parse(self.SRC))
        inputs = allocate_inputs(ir)
        result = execute_reference(ir, inputs, default_scalars(ir))
        A = inputs["A"]
        expected = A[0, :, 1:-1][None, :, :] + A[:, :, 2:]
        got = result["B"][0:12, :, 1:-1]
        # Interior region along i only (halo (0,1) on i, (0,0) on k/j).
        assert np.array_equal(result["B"][:, :, 1:-1],
                              A[0][None, :, 1:-1] + A[:, :, 2:])


class TestSkewedSubscript:
    SRC = """
    parameter N=10;
    iterator j, i;
    double A[N,N], B[N,N];
    copyin A;
    stencil s (B, A) {
      B[j][i] = A[j-i][i] + A[j][i];
    }
    s (B, A);
    copyout B;
    """

    def test_gather_path(self):
        # The skewed read A[j-i][i] goes out of bounds for j < i, so
        # restrict to a program where it stays in range by adding i.
        src = self.SRC.replace("A[j-i][i]", "A[i+j-i][i]")
        ir = build_ir(parse(src))
        inputs = allocate_inputs(ir)
        result = execute_reference(ir, inputs, default_scalars(ir))
        A = inputs["A"]
        # A[i + j - i][i] == A[j][i]: the skew cancels.
        assert np.array_equal(result["B"], 2 * A)

    def test_true_skew_values(self):
        src = """
        parameter N=8;
        iterator j, i;
        double A[N,N], B[N,N];
        copyin A;
        stencil s (B, A) {
          B[j][i] = A[2*i][i];
        }
        s (B, A);
        copyout B;
        """
        ir = build_ir(parse(src))
        inputs = {"A": np.arange(64, dtype=np.float64).reshape(8, 8),
                  "B": np.zeros((8, 8))}
        # 2*i stays in bounds only for i < 4; shrink the domain usage by
        # checking the valid columns of the result.
        from repro.gpu.executor import run_kernel

        arrays = {k: v.copy() for k, v in inputs.items()}
        run_kernel(ir, ir.kernels[0], arrays, {},
                   region=((0, 8), (0, 4)))
        expected = inputs["A"][[0, 2, 4, 6], :][:, :1]  # A[2i][i] per (j,i)
        for j in range(8):
            for i in range(4):
                assert arrays["B"][j, i] == inputs["A"][2 * i, i]
