"""Tests for the occupancy calculator."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.gpu import P100, V100, max_block_for_occupancy, occupancy
from repro.gpu.occupancy import registers_per_block


class TestBasicOccupancy:
    def test_full_occupancy(self):
        result = occupancy(P100, 256, 32, 0)
        assert result.occupancy == 1.0
        assert result.blocks_per_sm == 8

    def test_register_limited(self):
        # 128 regs/thread: 65536/(128*256-per-block...) -> few blocks.
        result = occupancy(P100, 256, 128, 0)
        assert result.limiter == "registers"
        assert result.occupancy == pytest.approx(0.25)

    def test_255_regs_very_low_occupancy(self):
        result = occupancy(P100, 256, 255, 0)
        assert result.occupancy <= 0.125
        assert result.limiter == "registers"

    def test_shmem_limited(self):
        result = occupancy(P100, 128, 32, 40 * 1024)
        assert result.limiter == "shmem"
        assert result.blocks_per_sm == 1

    def test_thread_limited(self):
        result = occupancy(P100, 1024, 32, 0)
        assert result.blocks_per_sm == 2
        assert result.occupancy == 1.0

    def test_block_slot_limited(self):
        result = occupancy(P100, 32, 16, 0)
        assert result.blocks_per_sm == 32
        assert result.limiter == "blocks"
        assert result.occupancy == 0.5  # 32 blocks * 1 warp / 64 warps

    def test_occupancy_monotone_in_registers(self):
        prev = 2.0
        for regs in (32, 64, 128, 255):
            occ = occupancy(P100, 256, regs, 0).occupancy
            assert occ <= prev
            prev = occ

    def test_occupancy_monotone_in_shmem(self):
        prev = 2.0
        for shm in (0, 8 * 1024, 16 * 1024, 32 * 1024, 48 * 1024):
            occ = occupancy(P100, 128, 32, shm).occupancy
            assert occ <= prev
            prev = occ


class TestErrors:
    def test_block_too_large(self):
        with pytest.raises(ValueError):
            occupancy(P100, 2048, 32, 0)

    def test_shmem_over_block_limit(self):
        with pytest.raises(ValueError):
            occupancy(P100, 128, 32, 49 * 1024)

    def test_too_many_registers(self):
        with pytest.raises(ValueError):
            occupancy(P100, 128, 300, 0)

    def test_zero_threads(self):
        with pytest.raises(ValueError):
            occupancy(P100, 0, 32, 0)


class TestRegistersPerBlock:
    def test_warp_granularity(self):
        # 33 threads -> 2 warps; 32 regs * 32 lanes = 1024 regs/warp.
        assert registers_per_block(P100, 33, 32) == 2 * 1024

    def test_granularity_rounding(self):
        # 10 regs * 32 = 320 -> rounded to 512 (granularity 256).
        assert registers_per_block(P100, 32, 10) == 512


class TestTargetOccupancy:
    def test_reachable_target(self):
        block = max_block_for_occupancy(P100, 0.5, 32, 0)
        assert block >= 256

    def test_unreachable_target(self):
        # With 255 regs/thread, 50% occupancy is impossible on P100.
        assert max_block_for_occupancy(P100, 0.5, 255, 0) == 0

    def test_v100_more_shmem(self):
        result = occupancy(V100, 128, 32, 60 * 1024)
        assert result.blocks_per_sm >= 1


@given(
    threads=st.sampled_from([32, 64, 128, 256, 512, 1024]),
    regs=st.integers(min_value=16, max_value=255),
    shm=st.integers(min_value=0, max_value=48 * 1024),
)
@settings(max_examples=200, deadline=None)
def test_occupancy_invariants(threads, regs, shm):
    try:
        result = occupancy(P100, threads, regs, shm)
    except ValueError:
        # Legitimately infeasible: a single block exceeds SM registers.
        assert registers_per_block(P100, threads, regs) > P100.registers_per_sm
        return
    assert 0 < result.occupancy <= 1.0
    assert result.blocks_per_sm >= 1
    assert result.active_warps <= P100.max_warps_per_sm
    # Resources actually fit.
    assert result.blocks_per_sm * shm <= P100.shared_mem_per_sm or shm == 0
    assert (
        result.blocks_per_sm * registers_per_block(P100, threads, regs)
        <= P100.registers_per_sm
    )
