"""Shared fixtures: small parsed programs and their IR."""

import pytest

from repro.dsl import parse
from repro.ir import build_ir

JACOBI_SRC = """
parameter L=64, M=64, N=64;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin out, in, h2inv, a, b;
iterate 12;
#pragma stream k block (32,16) unroll j=2
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1] + A[k][j][i-1]
    + A[k][j+1][i] + A[k][j-1][i] + A[k+1][j][i] + A[k-1][j][i]
    - A[k][j][i]*6.0);
}
jacobi (out, in, h2inv, a, b);
copyout out;
"""

PIPELINE_SRC = """
parameter N=32;
iterator k, j, i;
double a[N,N,N], b[N,N,N], c[N,N,N], w;
copyin a, w;
stencil blur (out, inp, w) {
  out[k][j][i] = w * (inp[k][j][i+1] + inp[k][j][i-1]);
}
stencil sharpen (out, inp) {
  out[k][j][i] = 2.0*inp[k][j][i] - 0.5*(inp[k+1][j][i] + inp[k-1][j][i]);
}
blur (b, a, w);
sharpen (c, b);
copyout c;
"""

SW4_LIKE_SRC = """
parameter N=32;
iterator k, j, i;
double u0[N,N,N], u1[N,N,N], mu[N,N,N], la[N,N,N],
       uacc0[N,N,N], uacc1[N,N,N], strx[N];
copyin u0, u1, mu, la, strx;
stencil rhs (uacc0, uacc1, u0, u1, mu, la, strx) {
  mux1 = mu[k][j][i-1] * la[k][j][i-1];
  mux2 = mu[k][j][i+1] * la[k][j][i+1];
  r0 = mux1 * u0[k][j][i-1] + mux2 * u0[k][j][i+1];
  r1 = mux1 * u1[k][j][i-1] + mux2 * u1[k][j][i+1];
  uacc0[k][j][i] = strx[i] * r0;
  uacc1[k][j][i] = strx[i] * r1;
}
rhs (uacc0, uacc1, u0, u1, mu, la, strx);
copyout uacc0, uacc1;
"""


@pytest.fixture
def jacobi_ir():
    return build_ir(parse(JACOBI_SRC))


@pytest.fixture
def pipeline_ir():
    return build_ir(parse(PIPELINE_SRC))


@pytest.fixture
def sw4_ir():
    return build_ir(parse(SW4_LIKE_SRC))
