"""Tests for statement decomposition into accumulation chains."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dsl import Name, parse_expr_text
from repro.dsl.ast import BinOp, Num, UnaryOp
from repro.ir import (
    decompose_statement,
    join_accumulation,
    split_accumulation,
)
from repro.ir.stencil import Statement
from repro.dsl.ast import ArrayAccess, AffineIndex


def _stmt(text_lhs, text_rhs):
    lhs = parse_expr_text(text_lhs)
    return Statement(lhs=lhs, rhs=parse_expr_text(text_rhs))


class TestSplitAccumulation:
    def test_simple_sum(self):
        terms = split_accumulation(parse_expr_text("a + b - c"))
        signs = [s for s, _ in terms]
        names = [str(t) for _, t in terms]
        assert signs == [1, 1, -1]
        assert names == ["a", "b", "c"]

    def test_nested_negation(self):
        terms = split_accumulation(parse_expr_text("a - (b - c)"))
        # a - (b - c) = a - b + c ... but (b - c) is parenthesized and the
        # splitter recurses through additive structure regardless.
        signs = [s for s, _ in terms]
        assert signs == [1, -1, 1]

    def test_unary_minus(self):
        terms = split_accumulation(parse_expr_text("-a + b"))
        assert [s for s, _ in terms] == [-1, 1]

    def test_products_are_opaque(self):
        terms = split_accumulation(parse_expr_text("a*b + c*d"))
        assert len(terms) == 2
        assert all(isinstance(t, BinOp) and t.op == "*" for _, t in terms)

    def test_single_term(self):
        terms = split_accumulation(parse_expr_text("a * b"))
        assert len(terms) == 1 and terms[0][0] == 1


class TestJoinAccumulation:
    def test_join_inverse_structure(self):
        expr = parse_expr_text("a + b - c")
        rejoined = join_accumulation(split_accumulation(expr))
        assert split_accumulation(rejoined) == split_accumulation(expr)

    def test_leading_negative(self):
        expr = parse_expr_text("-a + b")
        rejoined = join_accumulation(split_accumulation(expr))
        assert isinstance(rejoined, BinOp)
        assert split_accumulation(rejoined) == split_accumulation(expr)


# Property: split/join round-trips on random additive expressions.
_leaf = st.one_of(
    st.sampled_from(["a", "b", "c"]).map(Name),
    st.integers(1, 9).map(lambda v: Num(float(v), is_int=True)),
)


def _add_chain(children):
    return st.one_of(
        st.tuples(st.sampled_from("+-"), children, children).map(
            lambda t: BinOp(t[0], t[1], t[2])
        ),
        children.map(lambda e: UnaryOp("-", e)),
    )


additive_exprs = st.recursive(_leaf, _add_chain, max_leaves=10)


@given(additive_exprs)
@settings(max_examples=150, deadline=None)
def test_split_join_fixpoint(expr):
    terms = split_accumulation(expr)
    rejoined = join_accumulation(terms)
    assert split_accumulation(rejoined) == terms


class TestDecomposeStatement:
    def test_three_terms(self):
        stmt = _stmt("B[k][j][i]", "A[k-1][j][i] + A[k][j][i] - A[k+1][j][i]")
        result = decompose_statement(stmt, "_acc0")
        subs = result.sub_statements
        assert len(subs) == 4
        assert subs[0].op == "=" and subs[0].target == "_acc0"
        assert subs[1].op == "+=" and subs[2].op == "+="
        # Negative term arrives negated.
        assert isinstance(subs[2].rhs, UnaryOp)
        # Final store writes the accumulator back.
        assert subs[3].target == "B"
        assert subs[3].rhs == Name("_acc0")

    def test_local_statement_rejected(self):
        stmt = Statement(lhs=Name("r"), rhs=parse_expr_text("a + b"))
        try:
            decompose_statement(stmt, "_acc0")
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_preserves_store_op(self):
        lhs = ArrayAccess("B", (AffineIndex.of({"i": 1}),))
        stmt = Statement(lhs=lhs, rhs=parse_expr_text("a + b"), op="+=")
        result = decompose_statement(stmt, "_t")
        assert result.sub_statements[-1].op == "+="
