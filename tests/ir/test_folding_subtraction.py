"""Tests for binary-subtraction folds (the SW4 (u - um) motif)."""

import numpy as np

from repro.dsl import parse, array_accesses
from repro.ir import apply_folding, build_ir, find_fold_groups


def _kernel(body):
    src = f"""
    parameter N=16;
    iterator k, j, i;
    double u[N,N,N], um[N,N,N], B[N,N,N];
    stencil s (B, u, um) {{
      {body}
    }}
    s (B, u, um);
    """
    ir = build_ir(parse(src))
    return ir, ir.kernels[0]


class TestSubtractionFolds:
    def test_simple_difference_detected(self):
        _ir, kernel = _kernel(
            "B[k][j][i] = (u[k][j][i+1] - um[k][j][i+1]) "
            "+ (u[k][j][i-1] - um[k][j][i-1]);"
        )
        groups = find_fold_groups(kernel)
        assert len(groups) == 1
        assert groups[0].members == ("u", "um")
        assert groups[0].op == "-"

    def test_member_order_is_semantic(self):
        # (um - u) must fold with members in that order, not sorted.
        _ir, kernel = _kernel(
            "B[k][j][i] = (um[k][j][i+1] - u[k][j][i+1]) "
            "+ (um[k][j][i-1] - u[k][j][i-1]);"
        )
        groups = find_fold_groups(kernel)
        assert groups[0].members == ("um", "u")

    def test_mismatched_offsets_block(self):
        _ir, kernel = _kernel(
            "B[k][j][i] = u[k][j][i+1] - um[k][j][i-1];"
        )
        assert find_fold_groups(kernel) == ()

    def test_stray_access_blocks(self):
        _ir, kernel = _kernel(
            "B[k][j][i] = (u[k][j][i] - um[k][j][i]) + u[k][j][i+1];"
        )
        assert find_fold_groups(kernel) == ()

    def test_transform_replaces_pairs(self):
        _ir, kernel = _kernel(
            "B[k][j][i] = (u[k][j][i+1] - um[k][j][i+1]) "
            "+ (u[k][j][i-1] - um[k][j][i-1]);"
        )
        groups = find_fold_groups(kernel)
        folded, defs = apply_folding(kernel, groups)
        names = [a.name for s in folded.statements
                 for a in array_accesses(s.rhs)]
        assert names.count(defs[0].name) == 2
        assert "u" not in names and "um" not in names

    def test_folded_execution_matches(self):
        from repro.codegen import KernelPlan
        from repro.gpu.executor import (
            allocate_inputs,
            default_scalars,
            execute_plan,
            execute_reference,
        )

        ir, kernel = _kernel(
            "B[k][j][i] = (u[k][j][i+1] - um[k][j][i+1]) "
            "+ (u[k][j][i-1] - um[k][j][i-1]);"
        )
        groups = find_fold_groups(kernel)
        plan = KernelPlan(
            kernel_names=("s.0",),
            block=(4, 4),
            streaming="serial",
            stream_axis=0,
            fold_groups=groups,
        )
        inputs = allocate_inputs(ir)
        scalars = default_scalars(ir)
        reference = execute_reference(ir, inputs, scalars)
        got = execute_plan(ir, plan, inputs, scalars)
        assert np.allclose(reference["B"], got["B"], rtol=1e-14)

    def test_addsgd_suite_kernels_fold(self):
        from repro.suite import load_ir

        for name in ("addsgd4", "addsgd6"):
            ir = load_ir(name)
            groups = find_fold_groups(ir.kernels[0])
            members = {g.members for g in groups}
            assert ("u0", "um0") in members, name
            assert ("u1", "um1") in members and ("u2", "um2") in members
