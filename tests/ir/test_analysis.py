"""Tests for IR analyses: FLOPs, order, halos, access summaries, OI."""

import pytest

from repro.dsl import parse, parse_expr_text
from repro.ir import (
    access_summary,
    build_ir,
    characteristics,
    combined_halo,
    count_flops,
    kernel_flops_per_point,
    read_halos,
    stencil_order,
    theoretical_oi,
)


class TestCountFlops:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a + b", 1),
            ("a * b + c", 2),
            ("a", 0),
            ("A[k][j][i]", 0),
            ("-a", 0),
            ("a * (b + c) / d", 3),
            ("sqrt(a + b)", 2),
            ("fmax(a, b)", 1),
            ("a*A[k][j][i] - c*(A[k][j][i+1] + A[k][j][i-1])", 4),
        ],
    )
    def test_counts(self, text, expected):
        assert count_flops(parse_expr_text(text)) == expected


class TestJacobiAnalysis:
    def test_flops_per_point(self, jacobi_ir):
        # Listing 1's jacobi: 1 (c=b*h2inv) + RHS of the update.
        kernel = jacobi_ir.kernels[0]
        flops = kernel_flops_per_point(kernel)
        # RHS: a*A - c*(...): the paren sum has 6 adds/subs + 1 mul (A*6.0)
        # -> total = 1 + (2 muls + 1 sub + 7 ops) = 11
        assert flops == 11

    def test_order_is_one(self, jacobi_ir):
        assert stencil_order(jacobi_ir, jacobi_ir.kernels[0]) == 1

    def test_read_halo(self, jacobi_ir):
        halos = read_halos(jacobi_ir, jacobi_ir.kernels[0])
        assert halos["in"] == ((1, 1), (1, 1), (1, 1))

    def test_combined_halo(self, jacobi_ir):
        assert combined_halo(jacobi_ir, jacobi_ir.kernels[0]) == (
            (1, 1),
            (1, 1),
            (1, 1),
        )

    def test_access_summary(self, jacobi_ir):
        summary = access_summary(jacobi_ir, jacobi_ir.kernels[0])
        # A[k][j][i] appears twice textually (a*A and A*6.0): 8 reads,
        # 7 distinct offsets.
        assert summary["in"].reads_total == 8
        assert summary["in"].reads_distinct == 7
        assert summary["out"].writes == 1


class TestOrderAndHalos:
    def test_order2_stencil(self):
        src = """
        parameter N=32;
        iterator k, j, i;
        double A[N,N,N], B[N,N,N];
        stencil s (B, A) {
          B[k][j][i] = A[k][j][i+2] - A[k-2][j][i];
        }
        s (B, A);
        """
        ir = build_ir(parse(src))
        assert stencil_order(ir, ir.kernels[0]) == 2

    def test_asymmetric_halo(self):
        src = """
        parameter N=32;
        iterator j, i;
        double A[N,N], B[N,N];
        stencil s (B, A) {
          B[j][i] = A[j][i+3] + A[j-1][i];
        }
        s (B, A);
        """
        ir = build_ir(parse(src))
        halos = read_halos(ir, ir.kernels[0])
        assert halos["A"] == ((1, 0), (0, 3))

    def test_lower_rank_array_halo(self, sw4_ir):
        halos = read_halos(sw4_ir, sw4_ir.kernels[0])
        # strx[i] is read only at offset 0 along the i axis.
        assert halos["strx"] == ((0, 0), (0, 0), (0, 0))

    def test_repeated_access_counted_once_in_distinct(self, sw4_ir):
        summary = access_summary(sw4_ir, sw4_ir.kernels[0])
        # u0 is read at i-1 and i+1 only.
        assert summary["u0"].reads_distinct == 2
        # strx[i] is read twice textually, one distinct offset.
        assert summary["strx"].reads_total == 2
        assert summary["strx"].reads_distinct == 1


class TestCharacteristics:
    def test_jacobi_table1_row(self, jacobi_ir):
        row = characteristics(jacobi_ir)
        assert row.domain == (64, 64, 64)
        assert row.time_iterations == 12
        assert row.order == 1
        assert row.io_arrays == 2
        assert row.flops_per_point == 11

    def test_multi_kernel_io_union(self, pipeline_ir):
        row = characteristics(pipeline_ir)
        assert row.io_arrays == 3  # a, b, c

    def test_theoretical_oi_jacobi(self, jacobi_ir):
        # 11 flops/point; in read once + out written once = 16 B/point.
        oi = theoretical_oi(jacobi_ir)
        assert oi == pytest.approx(11 / 16)

    def test_theoretical_oi_counts_intermediates_twice(self, pipeline_ir):
        # b is written by blur and read by sharpen: 2 moves.
        oi = theoretical_oi(pipeline_ir)
        flops = 2 + 4  # blur 2, sharpen 4
        bytes_per_point = (1 + 2 + 1) * 8  # a read, b write+read, c write
        assert oi == pytest.approx(flops / bytes_per_point)
