"""Tests for homogenization (retiming legality, Section III-B2)."""

from repro.dsl import parse, parse_expr_text
from repro.ir import (
    build_ir,
    expr_homogenization,
    homogenize_expr,
    kernel_retimable,
    statement_retimable,
    streaming_iterator,
)


class TestExprHomogenization:
    def test_paper_example_positive(self):
        # B[k][j][i] = A[k-1][j][i]: RHS homogenizable by adding 1.
        result = expr_homogenization(parse_expr_text("A[k-1][j][i]"), "k")
        assert result.homogenizable and result.offset == -1

    def test_paper_example_negative(self):
        # C[k+1][j][i] * A[k-1][j][i] cannot be homogenized.
        expr = parse_expr_text("C[k+1][j][i] * A[k-1][j][i]")
        result = expr_homogenization(expr, "k")
        assert not result.homogenizable

    def test_mixed_rank_invariant(self):
        # strx[i] does not index k, so it is offset-invariant along k.
        expr = parse_expr_text("strx[i] * A[k+2][j][i]")
        result = expr_homogenization(expr, "k")
        assert result.homogenizable and result.offset == 2

    def test_same_offsets_multiple_arrays(self):
        expr = parse_expr_text("A[k-1][j][i] + C[k-1][j+1][i]")
        result = expr_homogenization(expr, "k")
        assert result.homogenizable and result.offset == -1

    def test_no_k_accesses(self):
        result = expr_homogenization(parse_expr_text("a * strx[i]"), "k")
        assert result.homogenizable and result.offset == 0

    def test_skewed_subscript_rejected(self):
        expr = parse_expr_text("A[2*k][j][i]")
        result = expr_homogenization(expr, "k")
        assert not result.homogenizable


class TestHomogenizeTransform:
    def test_shift_to_zero(self):
        expr, offset = homogenize_expr(parse_expr_text("A[k-1][j][i+1]"), "k")
        assert offset == -1
        assert str(expr) == "A[k][j][i+1]"

    def test_noop_when_centered(self):
        original = parse_expr_text("A[k][j][i]")
        expr, offset = homogenize_expr(original, "k")
        assert offset == 0 and expr is original

    def test_raises_on_inhomogeneous(self):
        expr = parse_expr_text("A[k-1][j][i] * A[k+1][j][i]")
        try:
            homogenize_expr(expr, "k")
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")


class TestStatementRetimable:
    def _kernel(self, body):
        src = f"""
        parameter N=32;
        iterator k, j, i;
        double A[N,N,N], B[N,N,N], C[N,N,N];
        stencil s (B, A, C) {{
          {body}
        }}
        s (B, A, C);
        """
        ir = build_ir(parse(src))
        return ir, ir.kernels[0]

    def test_sum_of_homogenizable_terms(self):
        # Each additive term has a single k offset -> retimable even
        # though the offsets differ between terms.
        ir, kernel = self._kernel(
            "B[k][j][i] = A[k-1][j][i] + A[k][j][i] + A[k+1][j][i];"
        )
        assert statement_retimable(kernel.statements[0], "k")
        assert kernel_retimable(ir, kernel)

    def test_product_across_offsets_not_retimable(self):
        ir, kernel = self._kernel("B[k][j][i] = C[k+1][j][i] * A[k-1][j][i];")
        assert not statement_retimable(kernel.statements[0], "k")
        assert not kernel_retimable(ir, kernel)

    def test_product_within_term_same_offset_ok(self):
        ir, kernel = self._kernel(
            "B[k][j][i] = C[k-1][j][i] * A[k-1][j][i] + A[k][j][i];"
        )
        assert kernel_retimable(ir, kernel)


class TestStreamingIterator:
    def test_default_outermost(self, pipeline_ir):
        kernel = pipeline_ir.kernels[0]
        assert streaming_iterator(pipeline_ir, kernel) == "k"

    def test_pragma_overrides(self, jacobi_ir):
        assert streaming_iterator(jacobi_ir, jacobi_ir.kernels[0]) == "k"
