"""Tests for distributive decomposition (the §III-B2 retiming enabler)."""

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro.dsl import parse_expr_text
from repro.ir.decompose import distribute_products, split_accumulation


def _eval(expr, env):
    from repro.dsl.ast import ArrayAccess, BinOp, Call, Name, Num, UnaryOp

    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Name):
        return env[expr.id]
    if isinstance(expr, UnaryOp):
        return -_eval(expr.operand, env)
    if isinstance(expr, BinOp):
        left, right = _eval(expr.left, env), _eval(expr.right, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        return left / right
    raise TypeError(type(expr))


ENV = {"a": 1.7, "b": -0.3, "c": 2.9, "d": 0.8}


class TestDistribution:
    def test_scalar_times_sum(self):
        expr = parse_expr_text("c * (a + b)")
        distributed = distribute_products(expr)
        terms = split_accumulation(distributed)
        assert len(terms) == 2
        assert np.isclose(_eval(distributed, ENV), _eval(expr, ENV))

    def test_sum_times_sum(self):
        expr = parse_expr_text("(a + b) * (c - d)")
        distributed = distribute_products(expr)
        assert len(split_accumulation(distributed)) == 4
        assert np.isclose(_eval(distributed, ENV), _eval(expr, ENV))

    def test_quotient_of_sum(self):
        expr = parse_expr_text("(a - b) / d")
        distributed = distribute_products(expr)
        assert len(split_accumulation(distributed)) == 2
        assert np.isclose(_eval(distributed, ENV), _eval(expr, ENV))

    def test_nested(self):
        expr = parse_expr_text("c * (a + b * (c + d))")
        distributed = distribute_products(expr)
        assert len(split_accumulation(distributed)) == 3
        assert np.isclose(_eval(distributed, ENV), _eval(expr, ENV))

    def test_plain_product_untouched(self):
        expr = parse_expr_text("a * b")
        assert distribute_products(expr) == expr

    def test_split_with_distribute_flag(self):
        expr = parse_expr_text("c*(a + b) - d")
        terms = split_accumulation(expr, distribute=True)
        assert len(terms) == 3
        signs = [s for s, _ in terms]
        assert signs == [1, 1, -1]


_leaf = st.sampled_from(["a", "b", "c", "d"]).map(parse_expr_text)


def _builders(children):
    from repro.dsl.ast import BinOp, UnaryOp

    return st.one_of(
        st.tuples(st.sampled_from("+-*"), children, children).map(
            lambda t: BinOp(t[0], t[1], t[2])
        ),
        children.map(lambda e: UnaryOp("-", e)),
    )


exprs = st.recursive(_leaf, _builders, max_leaves=8)


@given(exprs)
@settings(max_examples=200, deadline=None)
def test_distribution_preserves_value(expr):
    distributed = distribute_products(expr)
    assert np.isclose(_eval(distributed, ENV), _eval(expr, ENV), rtol=1e-10)


@given(exprs)
@settings(max_examples=200, deadline=None)
def test_distributed_terms_sum_to_value(expr):
    terms = split_accumulation(expr, distribute=True)
    total = sum(sign * _eval(term, ENV) for sign, term in terms)
    assert np.isclose(total, _eval(expr, ENV), rtol=1e-10)
