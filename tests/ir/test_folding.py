"""Tests for storage/computation folding detection and transform."""

from repro.dsl import parse, array_accesses
from repro.ir import apply_folding, build_ir, find_fold_groups


def _kernel(body, decls="double A[N,N,N], B[N,N,N], mu[N,N,N], la[N,N,N];"):
    src = f"""
    parameter N=16;
    iterator k, j, i;
    {decls}
    stencil s (B, A, mu, la) {{
      {body}
    }}
    s (B, A, mu, la);
    """
    ir = build_ir(parse(src))
    return ir.kernels[0]


class TestDetection:
    def test_simple_product_group(self):
        kernel = _kernel("B[k][j][i] = mu[k][j][i] * la[k][j][i] + A[k][j][i];")
        groups = find_fold_groups(kernel)
        assert len(groups) == 1
        assert groups[0].members == ("la", "mu")
        assert groups[0].op == "*"

    def test_group_with_multiple_offsets(self):
        kernel = _kernel(
            "B[k][j][i] = mu[k][j][i+1]*la[k][j][i+1] + mu[k][j][i-1]*la[k][j][i-1];"
        )
        groups = find_fold_groups(kernel)
        assert len(groups) == 1 and groups[0].members == ("la", "mu")

    def test_stray_access_blocks_fold(self):
        kernel = _kernel(
            "B[k][j][i] = mu[k][j][i]*la[k][j][i] + mu[k][j][i+1] + A[k][j][i];"
        )
        assert find_fold_groups(kernel) == ()

    def test_mismatched_offsets_block_fold(self):
        kernel = _kernel("B[k][j][i] = mu[k][j][i] * la[k][j][i+1];")
        assert find_fold_groups(kernel) == ()

    def test_additive_group(self):
        kernel = _kernel("B[k][j][i] = (mu[k][j][i] + la[k][j][i]) * A[k][j][i];")
        groups = find_fold_groups(kernel)
        assert len(groups) == 1 and groups[0].op == "+"

    def test_written_array_never_folds(self):
        kernel = _kernel("B[k][j][i] = B[k][j][i] * A[k][j][i];")
        # B is written; A+B should not fold.
        assert find_fold_groups(kernel) == ()

    def test_scalar_factor_allowed(self):
        kernel = _kernel(
            "B[k][j][i] = 2.0 * mu[k][j][i] * la[k][j][i] + A[k][j][i];"
        )
        groups = find_fold_groups(kernel)
        assert len(groups) == 1 and groups[0].members == ("la", "mu")


class TestTransform:
    def test_occurrences_replaced(self):
        kernel = _kernel(
            "B[k][j][i] = mu[k][j][i+1]*la[k][j][i+1] + mu[k][j][i-1]*la[k][j][i-1];"
        )
        groups = find_fold_groups(kernel)
        folded_kernel, folded_defs = apply_folding(kernel, groups)
        assert folded_defs[0].members == ("la", "mu")
        accesses = [
            a.name
            for s in folded_kernel.statements
            for a in array_accesses(s.rhs)
        ]
        assert "mu" not in accesses and "la" not in accesses
        assert accesses.count(folded_defs[0].name) == 2

    def test_scalar_factors_preserved(self):
        kernel = _kernel(
            "B[k][j][i] = 2.0 * mu[k][j][i] * la[k][j][i] + A[k][j][i];"
        )
        groups = find_fold_groups(kernel)
        folded_kernel, _ = apply_folding(kernel, groups)
        text = str(folded_kernel.statements[0].rhs)
        assert "2.0" in text

    def test_noop_without_groups(self):
        kernel = _kernel("B[k][j][i] = A[k][j][i];")
        folded_kernel, defs = apply_folding(kernel, ())
        assert folded_kernel is kernel and defs == ()

    def test_fold_reduces_distinct_arrays(self):
        kernel = _kernel(
            "B[k][j][i] = mu[k][j][i]*la[k][j][i] + mu[k][j][i+1]*la[k][j][i+1];"
        )
        groups = find_fold_groups(kernel)
        folded_kernel, _ = apply_folding(kernel, groups)
        assert len(folded_kernel.arrays_read()) < len(kernel.arrays_read())
