"""Tests for dependence DAG construction."""

import networkx as nx

from repro.dsl import parse
from repro.ir import (
    build_ir,
    intermediate_arrays,
    is_pipeline,
    kernel_dag,
    statement_dag,
    statements_for_output,
)


class TestKernelDag:
    def test_raw_edge(self, pipeline_ir):
        graph = kernel_dag(pipeline_ir)
        assert graph.has_edge("blur.0", "sharpen.0")
        assert graph.edges["blur.0", "sharpen.0"]["kind"] == "RAW"
        assert graph.edges["blur.0", "sharpen.0"]["array"] == "b"

    def test_independent_kernels_no_edge(self):
        src = """
        parameter N=16;
        iterator i;
        double a[N], b[N], c[N], d[N];
        stencil cp (o, x) { o[i] = x[i]; }
        cp (b, a);
        cp (d, c);
        """
        ir = build_ir(parse(src))
        graph = kernel_dag(ir)
        assert graph.number_of_edges() == 0

    def test_waw_edge(self):
        src = """
        parameter N=16;
        iterator i;
        double a[N], b[N];
        stencil cp (o, x) { o[i] = x[i]; }
        stencil dbl (o, x) { o[i] = 2.0 * x[i]; }
        cp (b, a);
        dbl (b, a);
        """
        ir = build_ir(parse(src))
        graph = kernel_dag(ir)
        assert graph.edges["cp.0", "dbl.0"]["kind"] == "WAW"

    def test_war_edge(self):
        src = """
        parameter N=16;
        iterator i;
        double a[N], b[N], c[N];
        stencil cp (o, x) { o[i] = x[i]; }
        cp (b, a);
        cp (a, c);
        """
        ir = build_ir(parse(src))
        graph = kernel_dag(ir)
        assert graph.has_edge("cp.0", "cp.1")
        assert graph.edges["cp.0", "cp.1"]["kind"] == "WAR"

    def test_is_dag(self, pipeline_ir):
        assert nx.is_directed_acyclic_graph(kernel_dag(pipeline_ir))

    def test_pipeline_detection(self, pipeline_ir):
        assert is_pipeline(pipeline_ir)

    def test_intermediates(self, pipeline_ir):
        assert intermediate_arrays(pipeline_ir) == ("b",)


class TestStatementDag:
    def test_scalar_raw_chain(self, sw4_ir):
        kernel = sw4_ir.kernels[0]
        graph = statement_dag(kernel)
        # mux1 (0) feeds r0 (2) and r1 (3).
        assert graph.has_edge(0, 2)
        assert graph.has_edge(0, 3)
        # r0 (2) feeds uacc0 store (4).
        assert graph.has_edge(2, 4)

    def test_no_false_edges(self, sw4_ir):
        graph = statement_dag(sw4_ir.kernels[0])
        # mux1 does not feed mux2.
        assert not graph.has_edge(0, 1)

    def test_accumulation_edge(self):
        src = """
        parameter N=16;
        iterator i;
        double a[N], b[N];
        stencil s (b, a) {
          r = a[i];
          r += a[i+1];
          b[i] = r;
        }
        s (b, a);
        """
        ir = build_ir(parse(src))
        graph = statement_dag(ir.kernels[0])
        assert graph.has_edge(0, 1)  # '+=' reads prior value
        assert graph.has_edge(1, 2)


class TestBackwardSlice:
    def test_slice_replicates_shared_temps(self, sw4_ir):
        kernel = sw4_ir.kernels[0]
        slice0 = statements_for_output(kernel, "uacc0")
        slice1 = statements_for_output(kernel, "uacc1")
        # Both slices contain the shared temporaries mux1 (0) and mux2 (1).
        assert 0 in slice0 and 1 in slice0
        assert 0 in slice1 and 1 in slice1
        # r1 (3) belongs only to uacc1's slice.
        assert 3 not in slice0 and 3 in slice1

    def test_slice_is_sorted(self, sw4_ir):
        indices = statements_for_output(sw4_ir.kernels[0], "uacc1")
        assert list(indices) == sorted(indices)
