"""Tests for IR construction (instantiation of stencil calls)."""

from repro.dsl import parse
from repro.ir import build_ir


class TestBuildIR:
    def test_arrays_and_scalars(self, jacobi_ir):
        arrays = jacobi_ir.array_map
        assert set(arrays) == {"in", "out"}
        assert arrays["in"].shape == (64, 64, 64)
        assert arrays["in"].bytes == 64**3 * 8
        assert set(jacobi_ir.scalar_map) == {"a", "b", "h2inv"}

    def test_kernel_instantiation_renames_formals(self, jacobi_ir):
        kernel = jacobi_ir.kernels[0]
        assert kernel.name == "jacobi.0"
        assert kernel.arrays_written() == ("out",)
        assert kernel.arrays_read() == ("in",)

    def test_local_statement_preserved(self, jacobi_ir):
        kernel = jacobi_ir.kernels[0]
        locals_ = kernel.local_statements()
        assert len(locals_) == 1 and locals_[0].target == "c"

    def test_pragma_carried(self, jacobi_ir):
        assert jacobi_ir.kernels[0].pragma.stream_dim == "k"

    def test_time_iterations(self, jacobi_ir):
        assert jacobi_ir.time_iterations == 12
        assert jacobi_ir.is_iterative

    def test_domain_shape(self, jacobi_ir):
        assert jacobi_ir.domain_shape() == (64, 64, 64)

    def test_pipeline_two_kernels(self, pipeline_ir):
        assert [k.name for k in pipeline_ir.kernels] == ["blur.0", "sharpen.0"]
        assert pipeline_ir.kernels[0].arrays_written() == ("b",)
        assert pipeline_ir.kernels[1].arrays_read() == ("b",)

    def test_io_arrays_order(self, sw4_ir):
        kernel = sw4_ir.kernels[0]
        io = kernel.io_arrays()
        assert set(io) == {"u0", "u1", "mu", "la", "strx", "uacc0", "uacc1"}

    def test_same_stencil_twice_gets_distinct_names(self):
        src = """
        parameter N=16;
        iterator i;
        double a[N], b[N], c[N];
        stencil cp (o, x) { o[i] = x[i]; }
        cp (b, a);
        cp (c, b);
        """
        ir = build_ir(parse(src))
        assert [k.name for k in ir.kernels] == ["cp.0", "cp.1"]
        assert ir.kernels[1].arrays_read() == ("b",)

    def test_assign_placements_renamed(self):
        src = """
        parameter N=16;
        iterator i;
        double a[N], b[N];
        stencil s (o, x) {
          #assign shmem (x), gmem (o)
          o[i] = x[i+1] + x[i-1];
        }
        s (b, a);
        """
        ir = build_ir(parse(src))
        assert ir.kernels[0].placement_map == {"a": "shmem", "b": "gmem"}

    def test_kernel_lookup(self, pipeline_ir):
        assert pipeline_ir.kernel("blur.0").stencil_name == "blur"
