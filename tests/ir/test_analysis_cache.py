"""Cache-parity guard for the memoized analysis and geometry layers.

The evaluation engine leans on two cache tiers: identity-memoized pure
analyses in ``ir.analysis`` and per-(IR, plan-family) geometry caches in
``codegen.tiling``.  Both must be invisible — every cached value must
equal what a cold computation produces — across the full 11-kernel
suite.
"""

import pytest

from repro.codegen.resources import auto_assign, seed_plan_from_pragma
from repro.codegen.tiling import (
    build_stages,
    buffer_requirements,
    distinct_read_offsets,
    launch_geometry,
    read_footprint,
    shmem_bytes_per_block,
)
from repro.gpu.registers import register_demand
from repro.ir.analysis import (
    access_patterns,
    access_summary,
    clear_analysis_cache,
    combined_halo,
    kernel_flops_per_point,
    read_halos,
    stencil_order,
)
from repro.suite import BENCHMARKS, load_ir
from repro.tuning import evaluation_caches_disabled

ALL = list(BENCHMARKS)


@pytest.mark.parametrize("name", ALL)
def test_analysis_results_survive_cache_clear(name):
    ir = load_ir(name)
    warm = []
    for instance in ir.kernels:
        warm.append(
            (
                access_patterns(ir, instance),
                access_summary(ir, instance),
                read_halos(ir, instance),
                combined_halo(ir, instance),
                stencil_order(ir, instance),
                kernel_flops_per_point(instance),
            )
        )
        # Second call must serve the identical object from the cache.
        assert access_patterns(ir, instance) is warm[-1][0]
        assert access_summary(ir, instance) is warm[-1][1]
    clear_analysis_cache()
    for instance, cached in zip(ir.kernels, warm):
        cold = (
            access_patterns(ir, instance),
            access_summary(ir, instance),
            read_halos(ir, instance),
            combined_halo(ir, instance),
            stencil_order(ir, instance),
            kernel_flops_per_point(instance),
        )
        assert cold == cached


@pytest.mark.parametrize("name", ALL)
def test_geometry_caches_match_uncached(name):
    ir = load_ir(name)
    for instance in ir.kernels:
        plan = seed_plan_from_pragma(ir, instance)
        stages = build_stages(ir, plan)
        warm_geometry = launch_geometry(ir, plan)
        warm = {
            "geometry": warm_geometry,
            "stages": stages,
            "buffers": buffer_requirements(ir, plan),
            "shmem": shmem_bytes_per_block(ir, plan),
            "demand": register_demand(ir, plan),
            "offsets": {
                array: distinct_read_offsets(ir, instance, array)
                for array in instance.arrays_read()
            },
            "footprints": {
                (stage.index, array): read_footprint(
                    ir, plan, stage, warm_geometry, array
                )
                for stage in stages
                for array in stage.instance.arrays_read()
            },
        }
        with evaluation_caches_disabled():
            clear_analysis_cache()
            cold_stages = build_stages(ir, plan)
            cold_geometry = launch_geometry(ir, plan)
            assert cold_geometry == warm["geometry"]
            assert cold_stages == warm["stages"]
            assert buffer_requirements(ir, plan) == warm["buffers"]
            assert shmem_bytes_per_block(ir, plan) == warm["shmem"]
            assert register_demand(ir, plan) == warm["demand"]
            for array, cached in warm["offsets"].items():
                assert distinct_read_offsets(ir, instance, array) == cached
            for (index, array), cached in warm["footprints"].items():
                stage = cold_stages[index]
                assert (
                    read_footprint(ir, plan, stage, cold_geometry, array)
                    == cached
                )
