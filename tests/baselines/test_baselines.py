"""Tests for the comparison code generators (Section VIII-F)."""

import pytest

from repro.baselines import (
    UnsupportedProgram,
    check_supported,
    guard_overhead,
    run_global,
    run_global_stream,
    run_ppcg,
    run_stencilgen,
)
from repro.suite import load_ir


@pytest.fixture(scope="module")
def jacobi_ir():
    return load_ir("7pt-smoother")


class TestNaiveBaselines:
    def test_global_runs(self, jacobi_ir):
        result = run_global(jacobi_ir)
        assert result.supported and result.tflops > 0
        assert all(
            p.streaming == "none" for p in result.schedule.plans
        )

    def test_global_stream_runs(self, jacobi_ir):
        result = run_global_stream(jacobi_ir)
        assert result.supported and result.tflops > 0
        assert all(p.streaming == "serial" for p in result.schedule.plans)

    def test_stream_loses_to_tiled(self, jacobi_ir):
        """§VIII-F: 'the global-stream version incurs much higher DRAM
        transactions ... than global'."""
        stream = run_global_stream(jacobi_ir)
        tiled = run_global(jacobi_ir)
        assert stream.tflops < tiled.tflops

    def test_no_shared_memory_used(self, jacobi_ir):
        for runner in (run_global, run_global_stream):
            result = runner(jacobi_ir)
            for plan in result.schedule.plans:
                assert not any(s == "shmem" for _, s in plan.placements)


class TestPpcg:
    def test_runs(self, jacobi_ir):
        result = run_ppcg(jacobi_ir)
        assert result.supported and result.tflops > 0

    def test_guard_overhead_grows_with_statements(self):
        small = guard_overhead(load_ir("7pt-smoother"))
        large = guard_overhead(load_ir("rhs4sgcurv"))
        assert large > small

    def test_loses_to_tuned_global(self, jacobi_ir):
        """Figure 5: PPCG is outperformed by the tuned global versions."""
        assert run_ppcg(jacobi_ir).tflops < run_global(jacobi_ir).tflops * 1.5


class TestStencilgen:
    def test_supports_uniform_rank(self, jacobi_ir):
        check_supported(jacobi_ir)
        result = run_stencilgen(jacobi_ir)
        assert result.supported and result.tflops > 0

    def test_rejects_sw4_mixed_ranks(self):
        ir = load_ir("addsgd4")
        with pytest.raises(UnsupportedProgram):
            check_supported(ir)
        result = run_stencilgen(ir)
        assert not result.supported
        assert "different dimensions" in result.reason

    def test_buffers_everything(self, jacobi_ir):
        result = run_stencilgen(jacobi_ir)
        for plan in result.schedule.plans:
            read = set()
            for name in plan.kernel_names:
                read.update(jacobi_ir.kernel(name).arrays_read())
            placed = {a for a, s in plan.placements if s == "shmem"}
            full_rank = {
                a
                for a in read
                if jacobi_ir.array_map[a].ndim == jacobi_ir.ndim
            }
            assert full_rank <= placed

    def test_no_artemis_specific_opts(self, jacobi_ir):
        result = run_stencilgen(jacobi_ir)
        for plan in result.schedule.plans:
            assert not plan.prefetch
            assert plan.total_unroll() == 1
            assert plan.perspective == "output"
            assert plan.streaming == "serial"

    def test_beats_global_baselines(self, jacobi_ir):
        """Figure 5: STENCILGEN above the global versions everywhere
        it can generate code."""
        sg = run_stencilgen(jacobi_ir)
        assert sg.tflops > run_global(jacobi_ir).tflops
