"""End-to-end tests of the ARTEMIS optimization flow (Section VII)."""

import pytest

from repro.baselines import run_global, run_ppcg, run_stencilgen
from repro.pipeline import format_report, optimize
from repro.suite import load_ir


@pytest.fixture(scope="module")
def smoother_outcome():
    return optimize(load_ir("7pt-smoother"))


@pytest.fixture(scope="module")
def sw4_outcome():
    return optimize(load_ir("rhs4center"), top_k=2)


class TestIterativeFlow:
    def test_deep_tuned_variant(self, smoother_outcome):
        assert smoother_outcome.variant == "deep-tuned"
        assert smoother_outcome.deep_tuning is not None

    def test_schedule_covers_iterations(self, smoother_outcome):
        assert smoother_outcome.schedule.total_time_steps() == 12

    def test_tipping_point_under_four(self, smoother_outcome):
        assert smoother_outcome.deep_tuning.tipping_point <= 4

    def test_custom_iteration_count(self):
        outcome = optimize(load_ir("7pt-smoother"), iterations=13)
        assert outcome.schedule.total_time_steps() == 13

    def test_hints_mention_schedule(self, smoother_outcome):
        assert any("schedule" in h for h in smoother_outcome.hints)


class TestSpatialFlow:
    def test_produces_schedule(self, sw4_outcome):
        assert sw4_outcome.tflops > 0
        assert sw4_outcome.schedule.plans

    def test_advice_collected(self, sw4_outcome):
        assert sw4_outcome.advice

    def test_beats_ppcg(self, sw4_outcome):
        assert sw4_outcome.tflops > run_ppcg(load_ir("rhs4center")).tflops


class TestFigure5Ordering:
    """The headline comparison: ARTEMIS >= STENCILGEN >= global > PPCG."""

    def test_smoother_ordering(self, smoother_outcome):
        ir = load_ir("7pt-smoother")
        sg = run_stencilgen(ir).tflops
        glob = run_global(ir).tflops
        ppcg = run_ppcg(ir).tflops
        assert smoother_outcome.tflops >= sg * 0.999
        assert sg > glob
        assert glob > ppcg


class TestReport:
    def test_report_renders(self, smoother_outcome):
        text = format_report(smoother_outcome)
        assert "ARTEMIS optimization report" in text
        assert "TFLOPS" in text
        assert "tipping point" in text

    def test_report_lists_launches(self, smoother_outcome):
        text = format_report(smoother_outcome)
        assert "ms/launch" in text
