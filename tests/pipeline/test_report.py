"""Tests for the textual optimization report."""

import pytest

from repro.pipeline import format_report, optimize
from repro.suite import load_ir


@pytest.fixture(scope="module")
def sw4_outcome():
    return optimize(load_ir("rhs4sgcurv"), top_k=1)


class TestSpatialReport:
    def test_mentions_variant_and_perf(self, sw4_outcome):
        text = format_report(sw4_outcome)
        assert f"variant chosen : {sw4_outcome.variant}" in text
        assert "TFLOPS" in text

    def test_lists_every_launch(self, sw4_outcome):
        text = format_report(sw4_outcome)
        assert text.count("ms/launch") == len(sw4_outcome.schedule.plans)

    def test_oi_triple_present(self, sw4_outcome):
        text = format_report(sw4_outcome)
        assert "OI(dram/tex/shm)" in text

    def test_fission_candidates_listed_when_generated(self, sw4_outcome):
        text = format_report(sw4_outcome)
        if sw4_outcome.fission_candidates:
            assert "fission candidates written (DSL)" in text
            assert "trivial-fission" in text

    def test_hints_rendered(self, sw4_outcome):
        text = format_report(sw4_outcome)
        if sw4_outcome.hints:
            assert "hints:" in text


class TestPhaseTimings:
    """Self-time accounting of format_phase_timings / aggregate_phases."""

    @staticmethod
    def _span(name, span_id, parent_id, start_s, end_s, thread_id=1):
        from repro.obs import Span

        return Span(
            name=name,
            span_id=span_id,
            parent_id=parent_id,
            thread_id=thread_id,
            thread_name=f"t{thread_id}",
            depth=0,
            start_s=start_s,
            end_s=end_s,
        )

    def _parse(self, lines):
        """lines -> {phase: (calls, total_ms, self_ms)}."""
        out = {}
        for line in lines[2:]:
            parts = line.split()
            out[parts[0]] = (
                int(parts[1]), float(parts[2]), float(parts[3])
            )
        return out

    def test_nested_spans_bill_children_once(self):
        from repro.pipeline.report import format_phase_timings

        spans = [
            self._span("tuning", 1, None, 0.0, 1.0),
            self._span("tuning.stage1", 2, 1, 0.0, 0.4),
            self._span("tuning.stage2", 3, 1, 0.4, 0.9),
            self._span("simulate", 4, 2, 0.1, 0.3),
        ]
        table = self._parse(format_phase_timings(spans))
        calls, total, self_ms = table["tuning"]
        assert calls == 1 and total == pytest.approx(1000.0)
        # self excludes direct children stage1 (400 ms) + stage2 (500 ms)
        # but NOT the grandchild simulate (billed to stage1 instead)
        assert self_ms == pytest.approx(100.0)
        _, s1_total, s1_self = table["tuning.stage1"]
        assert s1_total == pytest.approx(400.0)
        assert s1_self == pytest.approx(200.0)  # minus simulate's 200 ms
        # leaves keep all their time
        assert table["simulate"][2] == pytest.approx(200.0)

    def test_overlapping_sibling_spans_cannot_go_negative(self):
        from repro.pipeline.report import format_phase_timings

        # Parallel batch: two children overlap each other and together
        # exceed the parent's wall time (they ran on worker threads).
        spans = [
            self._span("batch", 1, None, 0.0, 1.0),
            self._span("evaluate", 2, 1, 0.0, 0.9, thread_id=2),
            self._span("evaluate", 3, 1, 0.05, 0.95, thread_id=3),
        ]
        table = self._parse(format_phase_timings(spans))
        calls, total, self_ms = table["evaluate"]
        assert calls == 2
        assert total == pytest.approx(1800.0)
        # children sum (1.8 s) exceeds the parent's 1.0 s: self time is
        # clamped at zero, never negative
        assert table["batch"][2] == pytest.approx(0.0)
        assert table["batch"][2] >= 0.0

    def test_same_name_at_multiple_depths(self):
        from repro.pipeline.report import format_phase_timings

        # "evaluate" appears both as a child of tuning and nested under
        # another evaluate (re-entrant phases): totals sum every span,
        # self subtracts each span's own direct children only.
        spans = [
            self._span("evaluate", 1, None, 0.0, 1.0),
            self._span("evaluate", 2, 1, 0.2, 0.6),
        ]
        table = self._parse(format_phase_timings(spans))
        calls, total, self_ms = table["evaluate"]
        assert calls == 2
        assert total == pytest.approx(1400.0)
        # outer self = 1.0 - 0.4 inner; inner self = 0.4 (leaf)
        assert self_ms == pytest.approx(1000.0)

    def test_empty_spans_produce_no_table(self):
        from repro.pipeline.report import format_phase_timings

        assert format_phase_timings(()) == []

    def test_report_appends_table_when_spans_passed(self, sw4_outcome):
        spans = [self._span("tuning", 1, None, 0.0, 0.5)]
        text = format_report(sw4_outcome, phase_spans=spans)
        assert "phase timings:" in text
        assert "tuning" in text.split("phase timings:")[1]
