"""Tests for the textual optimization report."""

import pytest

from repro.pipeline import format_report, optimize
from repro.suite import load_ir


@pytest.fixture(scope="module")
def sw4_outcome():
    return optimize(load_ir("rhs4sgcurv"), top_k=1)


class TestSpatialReport:
    def test_mentions_variant_and_perf(self, sw4_outcome):
        text = format_report(sw4_outcome)
        assert f"variant chosen : {sw4_outcome.variant}" in text
        assert "TFLOPS" in text

    def test_lists_every_launch(self, sw4_outcome):
        text = format_report(sw4_outcome)
        assert text.count("ms/launch") == len(sw4_outcome.schedule.plans)

    def test_oi_triple_present(self, sw4_outcome):
        text = format_report(sw4_outcome)
        assert "OI(dram/tex/shm)" in text

    def test_fission_candidates_listed_when_generated(self, sw4_outcome):
        text = format_report(sw4_outcome)
        if sw4_outcome.fission_candidates:
            assert "fission candidates written (DSL)" in text
            assert "trivial-fission" in text

    def test_hints_rendered(self, sw4_outcome):
        text = format_report(sw4_outcome)
        if sw4_outcome.hints:
            assert "hints:" in text
