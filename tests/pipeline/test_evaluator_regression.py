"""Regression guard: the evaluation engine must actually cut simulations.

Runs a full ``pipeline.optimize()`` twice on the same program — once
through the default engine (memoized + incremental escalation) and once
in seed-equivalent mode (no memoization, full register ladder, plan-
family caches disabled) — and asserts the engine at least halves the
``simulate()`` call count while producing the identical outcome.
"""

from repro.gpu.simulator import reset_simulate_calls, simulate_call_count
from repro.pipeline import optimize
from repro.suite import load_ir
from repro.tuning import PlanEvaluator, evaluation_caches_disabled


def _seed_mode_evaluator() -> PlanEvaluator:
    return PlanEvaluator.seed_mode()


class TestSimulateCallReduction:
    def test_iterative_optimize_halves_simulate_calls(self):
        ir = load_ir("7pt-smoother")
        reset_simulate_calls()
        fast = optimize(ir, top_k=2)
        fast_calls = reset_simulate_calls()
        with evaluation_caches_disabled():
            seed = optimize(ir, top_k=2, evaluator=_seed_mode_evaluator())
        seed_calls = reset_simulate_calls()

        assert fast_calls > 0
        assert seed_calls >= 2 * fast_calls, (
            f"engine made {fast_calls} simulate() calls, seed path "
            f"{seed_calls}; expected at least a 2x reduction"
        )
        # Determinism: the engine changes cost, never results.
        assert fast.schedule == seed.schedule
        assert fast.tflops == seed.tflops
        assert fast.variant == seed.variant

    def test_stats_account_for_avoided_simulations(self):
        ir = load_ir("7pt-smoother")
        reset_simulate_calls()
        outcome = optimize(ir, top_k=2)
        calls = reset_simulate_calls()
        stats = outcome.eval_stats
        assert stats is not None
        # Of the logical prices, ``vectorized`` came from the family
        # backend without a scalar simulate() call; the residue plus a
        # handful of out-of-engine calls (schedule_tflops prices the
        # final schedule directly) is what the global counter sees.
        scalar_residue = stats.simulations - stats.vectorized
        assert scalar_residue <= calls
        assert calls - scalar_residue <= len(outcome.schedule.plans) + 8
        assert stats.vectorized > 0
        assert stats.simulations_avoided > 0
        assert stats.screened > 0
