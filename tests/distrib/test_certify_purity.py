"""Certification purity under distribution.

The certifier is a pure function of (IR, plan-family): every
evaluation context — the coordinator certifying directly, a worker's
engine prescreen, a memo-cache replay of the same family, even a
process with a different hash seed — must derive *byte-identical*
diagnostics, and rejection counters must merge to the single-process
truth even when a worker is SIGKILLed mid-shard and its lease stolen.
"""

import json
import os
import subprocess
import sys

from repro.codegen.plan import KernelPlan
from repro.distrib import DistributedCoordinator, KillPolicy
from repro.dsl import parse
from repro.gpu.device import P100, get_device
from repro.gpu.simulator import PlanInfeasible
from repro.ir import build_ir
from repro.lint import certify_plan_transformations, check_plan, plan_rejection
from repro.obs import configure_metrics, get_metrics
from repro.tuning import PlanEvaluator, deep_tune

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))

PROGRAM = """
parameter N=64;
iterator k, j, i;
double A[N,N,N], T[N,N,N], B[N,N,N];
copyin A;
stencil produce (Y, X) { Y[k][j][i] = X[k][j][i+1] + X[k][j][i-1]; }
stencil consume (Y, X) { Y[k+1][j][i] = X[k][j][i] + X[k][j][i-1]; }
produce (T, A);
consume (B, T);
copyout B;
"""


def refuted_plan():
    return KernelPlan(("consume.0", "produce.0"), block=(32, 16))


def diagnostics_payload(diags):
    """Canonical bytes for a diagnostic list (what purity must preserve)."""
    return json.dumps(
        {
            "dicts": [d.as_dict() for d in diags],
            "renders": [d.render() for d in diags],
        },
        sort_keys=True,
    )


class TestDiagnosticPurity:
    def test_coordinator_worker_and_memo_views_agree(self):
        ir = build_ir(parse(PROGRAM))
        plan = refuted_plan()
        # Coordinator view: direct certification.
        direct = diagnostics_payload(certify_plan_transformations(ir, plan))
        # Worker view: the engine prescreen's rejection diagnostic.
        worker = diagnostics_payload([plan_rejection(ir, plan, P100)])
        # Memo-cache replay: the second probe of the same plan family
        # answers from the family memo, and must not drift.
        replay = diagnostics_payload([plan_rejection(ir, plan, P100)])
        assert direct == worker == replay

    def test_family_siblings_share_identical_diagnostics(self):
        # max_registers/block/unroll are structurally exempt: siblings
        # of one family must certify to the same bytes (modulo nothing).
        ir = build_ir(parse(PROGRAM))
        base = diagnostics_payload(
            certify_plan_transformations(ir, refuted_plan())
        )
        sibling = refuted_plan().replace(
            block=(16, 8), unroll=(1, 1, 2), max_registers=64
        )
        assert diagnostics_payload(
            certify_plan_transformations(ir, sibling)
        ) == base

    def test_byte_identical_across_hash_seeds(self):
        # The classic purity hazard: set-iteration order varying with
        # PYTHONHASHSEED.  Two processes with different seeds must
        # print the same certification bytes.
        script = (
            "import json, sys\n"
            "from repro.codegen.plan import KernelPlan\n"
            "from repro.dsl import parse\n"
            "from repro.ir import build_ir\n"
            "from repro.lint import certify_plan_transformations\n"
            f"ir = build_ir(parse({PROGRAM!r}))\n"
            "plan = KernelPlan(('consume.0', 'produce.0'), block=(32, 16))\n"
            "diags = certify_plan_transformations(ir, plan)\n"
            "print(json.dumps([d.as_dict() for d in diags], sort_keys=True))\n"
        )
        outputs = []
        for seed in ("0", "1"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=REPO_ROOT,
                check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]
        assert "RL301" in outputs[0]

    def test_check_plan_report_is_stable_across_calls(self):
        ir = build_ir(parse(PROGRAM))
        plan = refuted_plan()
        first = check_plan(ir, plan, P100)
        second = check_plan(ir, plan, P100)
        assert diagnostics_payload(list(first)) == diagnostics_payload(
            list(second)
        )


class TestCounterParity:
    def _lint_counters(self, snapshot):
        return {
            name: data["value"]
            for name, data in snapshot.items()
            if name.startswith("lint.reject.")
        }

    def test_split_evaluation_counts_like_single(self):
        # A "distributed" batch — refuted fused plans among feasible
        # singles — split across two worker engines must emit exactly
        # the per-rule counters of one engine evaluating everything.
        ir = build_ir(parse(PROGRAM))
        plans = [
            refuted_plan(),
            KernelPlan(("produce.0",), block=(32, 16)),
            refuted_plan().replace(block=(16, 8)),
            KernelPlan(("consume.0",), block=(32, 16)),
        ]

        def run(engines):
            configure_metrics(True, reset=True)
            try:
                for index, plan in enumerate(plans):
                    engine = engines[index % len(engines)]
                    engine.try_evaluate(ir, plan, catch=(PlanInfeasible,))
                counters = self._lint_counters(get_metrics().snapshot())
                stats = [
                    (e.stats.screened, e.stats.lint_rejections)
                    for e in engines
                ]
            finally:
                configure_metrics(False, reset=True)
            return counters, stats

        single_counters, single_stats = run([PlanEvaluator(device=P100)])
        split_counters, split_stats = run(
            [PlanEvaluator(device=P100), PlanEvaluator(device=P100)]
        )
        assert split_counters == single_counters
        assert single_counters.get("lint.reject.RL301") == 2
        # EvalStats invariant holds per worker: every screened
        # candidate is a counted lint rejection.
        for screened, lint_rejections in single_stats + split_stats:
            assert lint_rejections == screened

    def test_sigkilled_worker_preserves_lint_counters(
        self, smoother_ir, tmp_path
    ):
        # Full distributed chaos run: a SIGKILLed worker's shard is
        # stolen and re-evaluated, yet the dedup-billed engine reports
        # the single-process lint-rejection truth, the EvalStats
        # invariant holds, and no RL3xx counter appears on either side
        # (tuners emit single-kernel launches only — the certifier can
        # never reject a tuner-generated candidate).
        single_engine = PlanEvaluator(device=get_device("P100"))
        configure_metrics(True, reset=True)
        try:
            deep_tune(smoother_ir, evaluator=single_engine)
            single_counters = self._lint_counters(get_metrics().snapshot())
        finally:
            configure_metrics(False, reset=True)

        dist_engine = PlanEvaluator(device=get_device("P100"))
        configure_metrics(True, reset=True)
        try:
            with DistributedCoordinator(
                str(tmp_path / "dist"),
                workers=3,
                lease_ttl=0.25,
                poll_s=0.02,
                straggle_s=0.8,
                straggle_worker=0,
                partition_claims=True,
                kill=KillPolicy(victim=0, after_records=1),
            ) as coordinator:
                deep_tune(
                    smoother_ir,
                    evaluator=dist_engine,
                    make_tuner=coordinator.make_tuner,
                )
                stats = coordinator.stats
                merged = coordinator.merged_registry().snapshot()
        finally:
            configure_metrics(False, reset=True)

        assert stats.workers_killed == 1
        assert (
            dist_engine.stats.lint_rejections
            == single_engine.stats.lint_rejections
        )
        assert dist_engine.stats.lint_rejections > 0
        assert (
            dist_engine.stats.lint_rejections == dist_engine.stats.screened
        )
        merged_lint = self._lint_counters(merged)
        rl3 = {
            name
            for counters in (single_counters, merged_lint)
            for name in counters
            if name.startswith("lint.reject.RL3")
        }
        assert rl3 == set()
