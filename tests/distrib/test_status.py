"""`shard-status` scanning of a run directory, live or finished."""

import json

import pytest

from repro.distrib import DistribPaths, Shard, format_status, scan_status
from repro.distrib.files import lease_claim, lease_steal
from repro.resilience.atomic import atomic_write_json


def _shard(sid, count=2):
    return Shard(
        sid=sid,
        irfp="deadbeefdeadbeef",
        tag="sf",
        candidates=tuple(
            (f"{sid}-k{i}", {"v": i}) for i in range(count)
        ),
    )


@pytest.fixture
def run_dir(tmp_path):
    """A synthetic directory with one shard in every lifecycle state."""
    paths = DistribPaths(str(tmp_path)).ensure()
    atomic_write_json(
        paths.config_path,
        {"device": "P100", "workers": 2, "lease_ttl": 2.0},
    )
    _shard("g0001-s000").write(paths)  # pending: no lease
    _shard("g0001-s001").write(paths)  # leased: fresh heartbeat
    lease_claim(paths, "g0001-s001", worker=0)
    _shard("g0001-s002").write(paths)  # expired: old heartbeat
    lease_claim(paths, "g0001-s002", worker=1, now=1.0)
    _shard("g0001-s003").write(paths)  # done, after a steal
    lease_claim(paths, "g0001-s003", worker=0, now=1.0)
    lease_steal(paths, "g0001-s003", worker=1, ttl=2.0, now=10.0)
    atomic_write_json(
        paths.done_path("g0001-s003"),
        {"shard": "g0001-s003", "worker": 1, "generation": 1,
         "candidates": 2, "completed_ts": 11.0},
    )
    with open(paths.worker_journal_path(1), "a", encoding="utf-8") as f:
        f.write(json.dumps({"kind": "candidate", "key": "k"}) + "\n")
        f.write('{"kind": "candidate", "key": "torn')  # never counted
    return paths


class TestScanStatus:
    def test_states_and_totals(self, run_dir):
        info = scan_status(run_dir.root)
        states = {e["shard"]: e["state"] for e in info["shards"]}
        assert states == {
            "g0001-s000": "pending",
            "g0001-s001": "leased",
            "g0001-s002": "expired",
            "g0001-s003": "done",
        }
        assert info["totals"] == {
            "shards": 4, "pending": 1, "leased": 1, "expired": 1, "done": 1,
        }
        assert info["stopping"] is False

    def test_steal_and_journal_details(self, run_dir):
        info = scan_status(run_dir.root)
        done = next(
            e for e in info["shards"] if e["shard"] == "g0001-s003"
        )
        assert done["worker"] == 1
        assert done["generation"] == 1
        assert done["stolen_from"] == 0
        # The torn trailing line is invisible to the scan.
        assert info["journals"] == [
            {"journal": "worker-01.jsonl", "records": 1}
        ]

    def test_not_a_run_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            scan_status(str(tmp_path / "nowhere"))

    def test_format_renders_every_shard(self, run_dir):
        text = format_status(scan_status(run_dir.root))
        for sid in ("g0001-s000", "g0001-s001", "g0001-s002", "g0001-s003"):
            assert sid in text
        assert "stolen from 0" in text
        assert "device=P100 workers=2" in text
        assert "4 total" in text
