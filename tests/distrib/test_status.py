"""`shard-status` scanning of a run directory, live or finished."""

import json

import pytest

from repro.distrib import DistribPaths, Shard, format_status, scan_status
from repro.distrib.files import lease_claim, lease_steal
from repro.resilience.atomic import atomic_write_json


def _shard(sid, count=2):
    return Shard(
        sid=sid,
        irfp="deadbeefdeadbeef",
        tag="sf",
        candidates=tuple(
            (f"{sid}-k{i}", {"v": i}) for i in range(count)
        ),
    )


@pytest.fixture
def run_dir(tmp_path):
    """A synthetic directory with one shard in every lifecycle state."""
    paths = DistribPaths(str(tmp_path)).ensure()
    atomic_write_json(
        paths.config_path,
        {"device": "P100", "workers": 2, "lease_ttl": 2.0},
    )
    _shard("g0001-s000").write(paths)  # pending: no lease
    _shard("g0001-s001").write(paths)  # leased: fresh heartbeat
    lease_claim(paths, "g0001-s001", worker=0)
    _shard("g0001-s002").write(paths)  # expired: old heartbeat
    lease_claim(paths, "g0001-s002", worker=1, now=1.0)
    _shard("g0001-s003").write(paths)  # done, after a steal
    lease_claim(paths, "g0001-s003", worker=0, now=1.0)
    lease_steal(paths, "g0001-s003", worker=1, ttl=2.0, now=10.0)
    atomic_write_json(
        paths.done_path("g0001-s003"),
        {"shard": "g0001-s003", "worker": 1, "generation": 1,
         "candidates": 2, "completed_ts": 11.0},
    )
    with open(paths.worker_journal_path(1), "a", encoding="utf-8") as f:
        f.write(json.dumps({"kind": "candidate", "key": "k"}) + "\n")
        f.write('{"kind": "candidate", "key": "torn')  # never counted
    return paths


class TestScanStatus:
    def test_states_and_totals(self, run_dir):
        info = scan_status(run_dir.root)
        states = {e["shard"]: e["state"] for e in info["shards"]}
        assert states == {
            "g0001-s000": "pending",
            "g0001-s001": "leased",
            "g0001-s002": "expired",
            "g0001-s003": "done",
        }
        assert info["totals"] == {
            "shards": 4, "pending": 1, "leased": 1, "expired": 1, "done": 1,
        }
        assert info["stopping"] is False

    def test_steal_and_journal_details(self, run_dir):
        info = scan_status(run_dir.root)
        done = next(
            e for e in info["shards"] if e["shard"] == "g0001-s003"
        )
        assert done["worker"] == 1
        assert done["generation"] == 1
        assert done["stolen_from"] == 0
        # The torn trailing line is invisible to the scan.
        assert info["journals"] == [
            {"journal": "worker-01.jsonl", "records": 1}
        ]

    def test_not_a_run_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            scan_status(str(tmp_path / "nowhere"))

    def test_initializing_run_directory(self, tmp_path):
        # The window where the coordinator has made the root (and maybe
        # config.json) but not yet published tasks/: a snapshot, not an
        # error — `repro top` polls exactly this moment.
        atomic_write_json(
            str(tmp_path / "config.json"), {"workers": 2}
        )
        info = scan_status(str(tmp_path))
        assert info["state"] == "initializing"
        assert info["shards"] == []
        assert info["totals"]["shards"] == 0
        assert info["config"]["workers"] == 2
        assert "initializing" in format_status(info)

    def test_bare_empty_directory_initializing(self, tmp_path):
        info = scan_status(str(tmp_path))
        assert info["state"] == "initializing"
        assert info["config"] == {}

    def test_iso_timestamps_alongside_relative_ages(self, run_dir):
        info = scan_status(run_dir.root, now=1700000000.0)
        assert info["scanned_iso"] == "2023-11-14T22:13:20Z"
        by_sid = {e["shard"]: e for e in info["shards"]}
        leased = by_sid["g0001-s001"]
        assert leased["hb_age_s"] is not None
        assert leased["hb_iso"].endswith("Z")
        assert by_sid["g0001-s000"]["hb_iso"] is None  # pending: no lease
        done = by_sid["g0001-s003"]
        assert done["completed_iso"] == "1970-01-01T00:00:11Z"

    def test_created_iso_from_config(self, run_dir):
        atomic_write_json(
            run_dir.config_path,
            {"device": "P100", "workers": 2, "lease_ttl": 2.0,
             "created_ts": 0.0},
        )
        info = scan_status(run_dir.root)
        assert info["created_iso"] == "1970-01-01T00:00:00Z"
        assert info["state"] == "running"

    def test_json_round_trip(self, run_dir):
        # --json output must serialize as-is (ISO strings, not datetimes).
        json.dumps(scan_status(run_dir.root))

    def test_format_renders_every_shard(self, run_dir):
        text = format_status(scan_status(run_dir.root))
        for sid in ("g0001-s000", "g0001-s001", "g0001-s002", "g0001-s003"):
            assert sid in text
        assert "stolen from 0" in text
        assert "device=P100 workers=2" in text
        assert "4 total" in text
