"""End-to-end distributed search: bit-identity, steals, SIGKILL chaos.

The acceptance criteria of the distributed milestone, demonstrated on
real suite kernels:

* N=4 workers produce byte-identical winners to a single-process run —
  including when one worker is SIGKILLed mid-shard;
* a forced lease steal evaluates a shard twice but bills it once: the
  shared engine's ``requests`` equals the single-process count exactly.
"""

import contextlib
import os

import pytest

from repro import suite
from repro.codegen import seed_plan_from_pragma
from repro.distrib import DistributedCoordinator, KillPolicy, scan_status
from repro.gpu.device import get_device
from repro.obs import configure_metrics
from repro.tuning import PlanEvaluator, deep_tune


@contextlib.contextmanager
def _metrics_on():
    configure_metrics(True, reset=True)
    try:
        yield
    finally:
        configure_metrics(False, reset=True)

#: Chaos timing proven deterministic-enough in CI: the straggler sleeps
#: 0.8 s after each journaled record while leases expire at 0.25 s, so
#: its first shard is always stolen mid-flight.
CHAOS = dict(
    lease_ttl=0.25,
    poll_s=0.02,
    straggle_s=0.8,
    straggle_worker=0,
    partition_claims=True,
)


def _entry_view(result):
    """Every value a deep-tuning entry carries, for exact comparison."""
    return [
        (
            entry.time_tile,
            entry.measurement.plan,
            entry.measurement.time_s,
            entry.measurement.tflops,
            entry.bandwidth_bound,
            entry.bound_level,
        )
        for entry in result.entries
    ]


@pytest.fixture(scope="module", params=["7pt-smoother", "27pt-smoother"])
def reference(request):
    """Single-process deep-tune of one suite kernel: the ground truth."""
    ir = suite.BENCHMARKS[request.param].ir()
    engine = PlanEvaluator(device=get_device("P100"))
    result = deep_tune(ir, evaluator=engine)
    return request.param, ir, result, engine.stats.snapshot()


def _distributed_deep_tune(root, ir, workers, **coordinator_kwargs):
    engine = PlanEvaluator(device=get_device("P100"))
    with DistributedCoordinator(
        str(root), workers=workers, **coordinator_kwargs
    ) as coordinator:
        result = deep_tune(
            ir, evaluator=engine, make_tuner=coordinator.make_tuner
        )
        stats = coordinator.stats
    return result, engine, stats, coordinator


class TestBitIdenticalParity:
    def test_four_workers_match_single_process(self, reference, tmp_path):
        name, ir, single, single_stats = reference
        with _metrics_on():
            result, engine, stats, coordinator = _distributed_deep_tune(
                tmp_path / "dist", ir, workers=4, lease_ttl=2.0, poll_s=0.02
            )
            merged = coordinator.merged_registry().snapshot()
        assert _entry_view(result) == _entry_view(single), name
        assert result.evaluations == single.evaluations
        # Identical billing: every candidate evaluated exactly once
        # across the pool, never re-billed by the merge.
        assert engine.stats.requests == single_stats.requests
        assert stats.records_merged > 0
        assert stats.shards_published > 0
        assert stats.batches > 0
        # The run-level merged registry reports the same dedup-aware
        # eval.requests as the single-process run (worker snapshots'
        # raw eval.* — which would double-count steals — are excluded).
        assert merged["eval.requests"]["value"] == single_stats.requests
        # Cleanly drained workers left their final snapshots, and the
        # coordinator published the merged run-level one.
        obs_dir = coordinator.paths.obs_dir
        names = sorted(os.listdir(obs_dir))
        assert "merged.metrics.json" in names
        assert sum(n.startswith("worker-") for n in names) == 4

    def test_sigkilled_worker_does_not_change_the_answer(
        self, reference, tmp_path
    ):
        name, ir, single, single_stats = reference
        with _metrics_on():
            result, engine, stats, coordinator = _distributed_deep_tune(
                tmp_path / "dist",
                ir,
                workers=4,
                kill=KillPolicy(victim=0, after_records=1),
                **CHAOS,
            )
            merged = coordinator.merged_registry().snapshot()
        assert stats.workers_killed == 1
        assert _entry_view(result) == _entry_view(single), name
        assert result.evaluations == single.evaluations
        assert engine.stats.requests == single_stats.requests
        # Even with a SIGKILLed worker (whose partial snapshot may
        # carry raw counts for a shard re-evaluated elsewhere), the
        # merged registry's eval.requests stays dedup-exact.
        assert merged["eval.requests"]["value"] == single_stats.requests


class TestForcedSteal:
    def test_steal_dedupes_and_never_double_bills(self, reference, tmp_path):
        name, ir, single, single_stats = reference
        if name != "7pt-smoother":
            pytest.skip("one kernel exercises the steal path")
        result, engine, stats, _ = _distributed_deep_tune(
            tmp_path / "dist", ir, workers=2, **CHAOS
        )
        # The straggler lost at least one shard mid-flight, and the
        # stealer's re-evaluation of already-journaled candidates was
        # dropped by the merge.
        assert stats.shards_stolen >= 1
        assert stats.lease_expiries >= 1
        assert stats.dedup_hits >= 1
        # Zero double-billing despite the duplicate evaluations.
        assert engine.stats.requests == single_stats.requests
        assert _entry_view(result) == _entry_view(single)

    def test_finished_run_scans_as_done(self, reference, tmp_path):
        name, ir, single, _ = reference
        if name != "7pt-smoother":
            pytest.skip("one kernel exercises the status scan")
        root = tmp_path / "dist"
        _, _, stats, _ = _distributed_deep_tune(
            root, ir, workers=2, lease_ttl=2.0, poll_s=0.02
        )
        info = scan_status(str(root))
        assert info["totals"]["shards"] == stats.shards_published
        assert info["totals"]["done"] == info["totals"]["shards"]
        assert info["stopping"] is True  # close() requested the stop
        assert info["merged_records"] >= stats.records_merged
        assert sum(j["records"] for j in info["journals"]) >= (
            stats.records_merged + stats.dedup_hits
        )


class TestCoordinatorValidation:
    def test_zero_workers_rejected(self, tmp_path):
        from repro.resilience import UsageError

        with pytest.raises(UsageError):
            DistributedCoordinator(str(tmp_path / "d"), workers=0)

    def test_nonpositive_ttl_rejected(self, tmp_path):
        from repro.resilience import UsageError

        with pytest.raises(UsageError):
            DistributedCoordinator(
                str(tmp_path / "d"), workers=1, lease_ttl=0.0
            )


class TestSmallBatchShortCircuit:
    def test_below_min_batch_runs_locally(self, smoother_ir, base_plan,
                                          tmp_path):
        # Batches smaller than min_batch never reach the pool: the
        # parent tuner evaluates them inline, so a distributed run with
        # a huge min_batch degenerates to plain single-process tuning.
        with DistributedCoordinator(
            str(tmp_path / "dist"), workers=1, min_batch=10**9
        ) as coordinator:
            tuner = coordinator.make_tuner(smoother_ir)
            result = tuner.tune(base_plan)
            assert coordinator.stats.shards_published == 0
            assert coordinator.stats.batches == 0
        engine = PlanEvaluator(device=get_device("P100"))
        from repro.tuning import HierarchicalTuner

        single = HierarchicalTuner(smoother_ir, evaluator=engine).tune(
            base_plan
        )
        assert result.best.plan == single.best.plan
        assert result.best.time_s == single.best.time_s
