"""Fixtures for the distributed-search test suite.

The reduced-domain smoother keeps lease/steal chaos scenarios cheap
(each runs a full hierarchical tuning pass several times); the
acceptance-level bit-identity tests use real suite kernels instead.
"""

import pytest

from repro.codegen import seed_plan_from_pragma
from repro.dsl import parse
from repro.ir import build_ir

SMOOTHER_SRC = """
parameter L=128, M=128, N=128;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin in, h2inv, a, b;
iterate 8;
#pragma stream k block (32,16)
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1] + A[k][j][i-1]
    + A[k][j+1][i] + A[k][j-1][i] + A[k+1][j][i] + A[k-1][j][i]
    - A[k][j][i]*6.0);
}
jacobi (out, in, h2inv, a, b);
copyout out;
"""


@pytest.fixture(scope="module")
def smoother_ir():
    return build_ir(parse(SMOOTHER_SRC))


@pytest.fixture
def base_plan(smoother_ir):
    return seed_plan_from_pragma(smoother_ir, smoother_ir.kernels[0]).replace(
        placements=(("in", "shmem"),)
    )
