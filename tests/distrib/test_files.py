"""Lease protocol and journal tailing: the coordination primitives."""

import json
import os

from repro.distrib import DistribPaths, JournalTailReader, WorkerConfig
from repro.distrib.files import (
    lease_claim,
    lease_expired,
    lease_renew,
    lease_steal,
    read_json,
)


class TestReadJson:
    def test_missing_file_is_none(self, tmp_path):
        assert read_json(str(tmp_path / "absent.json")) is None

    def test_partial_document_is_none(self, tmp_path):
        # A freshly created lease can be observed between O_EXCL create
        # and payload write; that window must read as "not yet".
        path = tmp_path / "lease.json"
        path.write_text('{"shard": "g0001-s0')
        assert read_json(str(path)) is None

    def test_complete_document_round_trips(self, tmp_path):
        path = tmp_path / "ok.json"
        path.write_text('{"a": 1}')
        assert read_json(str(path)) == {"a": 1}


class TestLeaseProtocol:
    def test_claim_is_exclusive(self, tmp_path):
        paths = DistribPaths(str(tmp_path)).ensure()
        lease = lease_claim(paths, "g0001-s000", worker=0)
        assert lease is not None
        assert lease["worker"] == 0
        assert lease["generation"] == 0
        assert lease["stolen_from"] is None
        # Second claimant loses, regardless of worker id.
        assert lease_claim(paths, "g0001-s000", worker=1) is None
        # The on-disk lease is complete JSON identical to the winner's.
        assert read_json(paths.lease_path("g0001-s000")) == lease

    def test_expiry_is_heartbeat_age(self, tmp_path):
        paths = DistribPaths(str(tmp_path)).ensure()
        lease = lease_claim(paths, "g0001-s000", worker=0, now=100.0)
        assert not lease_expired(lease, ttl=2.0, now=101.9)
        assert lease_expired(lease, ttl=2.0, now=102.1)

    def test_steal_requires_expiry(self, tmp_path):
        paths = DistribPaths(str(tmp_path)).ensure()
        lease_claim(paths, "g0001-s000", worker=0, now=100.0)
        assert (
            lease_steal(paths, "g0001-s000", worker=1, ttl=2.0, now=101.0)
            is None
        )
        stolen = lease_steal(paths, "g0001-s000", worker=1, ttl=2.0, now=103.0)
        assert stolen is not None
        assert stolen["worker"] == 1
        assert stolen["generation"] == 1
        assert stolen["stolen_from"] == 0

    def test_steal_of_unleased_shard_is_none(self, tmp_path):
        paths = DistribPaths(str(tmp_path)).ensure()
        assert (
            lease_steal(paths, "g0001-s000", worker=1, ttl=2.0, now=100.0)
            is None
        )

    def test_renew_updates_heartbeat(self, tmp_path):
        paths = DistribPaths(str(tmp_path)).ensure()
        lease = lease_claim(paths, "g0001-s000", worker=0, now=100.0)
        renewed = lease_renew(paths, lease, now=101.5)
        assert renewed is not None
        assert renewed["hb_ts"] == 101.5
        assert not lease_expired(renewed, ttl=2.0, now=103.0)

    def test_renew_after_steal_reports_ownership_loss(self, tmp_path):
        paths = DistribPaths(str(tmp_path)).ensure()
        lease = lease_claim(paths, "g0001-s000", worker=0, now=100.0)
        lease_steal(paths, "g0001-s000", worker=1, ttl=2.0, now=103.0)
        # The stalled original owner must abandon the shard.
        assert lease_renew(paths, lease, now=104.0) is None


class TestJournalTailReader:
    def test_incremental_and_torn_tail(self, tmp_path):
        path = tmp_path / "worker-00.jsonl"
        reader = JournalTailReader(str(path))
        assert list(reader.poll()) == []  # not created yet

        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "candidate", "key": "k1"}) + "\n")
            handle.write(json.dumps({"kind": "candidate", "key": "k2"}) + "\n")
        assert [r["key"] for r in reader.poll()] == ["k1", "k2"]
        assert list(reader.poll()) == []  # nothing new

        # A torn append (SIGKILL mid-write) is never consumed...
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "candidate", "key": "k3", "pl')
        assert list(reader.poll()) == []
        # ...until the line completes.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('an": null}\n')
        assert [r["key"] for r in reader.poll()] == ["k3"]

    def test_garbage_complete_lines_are_skipped(self, tmp_path):
        path = tmp_path / "worker-00.jsonl"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"kind": "candidate", "key": "k1"}) + "\n")
            handle.write(json.dumps([1, 2, 3]) + "\n")  # not a record dict
        assert [r["key"] for r in JournalTailReader(str(path)).poll()] == [
            "k1"
        ]


class TestWorkerConfig:
    def test_round_trips_through_json(self):
        config = WorkerConfig(
            worker_id=3,
            device="P100",
            lease_ttl=0.5,
            straggle_s=0.25,
            claim_residue=(1, 4),
            chaos={"rate": 0.1, "seed": 7},
        )
        wire = json.loads(json.dumps(config.to_dict()))
        assert WorkerConfig.from_dict(wire) == config

    def test_layout_paths_are_disjoint(self, tmp_path):
        paths = DistribPaths(str(tmp_path)).ensure()
        distinct = {
            paths.config_path,
            paths.ir_path("fp"),
            paths.task_path("g0001-s000"),
            paths.lease_path("g0001-s000"),
            paths.done_path("g0001-s000"),
            paths.worker_journal_path(0),
            paths.merged_path,
            paths.stop_path,
        }
        assert len(distinct) == 8
        for path in distinct:
            assert os.path.dirname(path).startswith(str(tmp_path))
