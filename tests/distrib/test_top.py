"""`repro top`: model building, rendering, and the one-shot loop."""

import io
import json

import pytest

from repro.distrib import DistribPaths, Shard, build_top_model, render_top, run_top
from repro.distrib.files import lease_claim
from repro.obs import MetricsRegistry, build_snapshot, write_snapshot
from repro.resilience.atomic import atomic_write_json


def _shard(sid, count=2):
    return Shard(
        sid=sid,
        irfp="deadbeefdeadbeef",
        tag="sf",
        candidates=tuple((f"{sid}-k{i}", {"v": i}) for i in range(count)),
    )


def _worker_snapshot(paths, worker, requests, hits=0, ts=None, started=None):
    registry = MetricsRegistry()
    registry.counter("eval.requests").add(requests)
    if hits:
        registry.counter("eval.hits").add(hits)
    snap = build_snapshot(worker, registry=registry, seq=1, started_ts=started)
    if ts is not None:
        snap["ts"] = ts
    write_snapshot(paths.worker_metrics_path(worker), snap)
    return snap


@pytest.fixture
def run_dir(tmp_path):
    """A live-looking run: one done shard, one leased, one pending."""
    paths = DistribPaths(str(tmp_path)).ensure()
    atomic_write_json(
        paths.config_path,
        {"device": "P100", "workers": 2, "lease_ttl": 2.0,
         "flush_s": 0.5, "created_ts": 0.0},
    )
    _shard("g0001-s000").write(paths)
    atomic_write_json(
        paths.done_path("g0001-s000"),
        {"shard": "g0001-s000", "worker": 0, "generation": 0,
         "candidates": 2, "completed_ts": 5.0},
    )
    _shard("g0001-s001").write(paths)
    lease_claim(paths, "g0001-s001", worker=1)
    _shard("g0001-s002").write(paths)  # pending
    _worker_snapshot(paths, 0, requests=80, hits=20)
    _worker_snapshot(paths, 1, requests=40)
    return paths


class TestBuildTopModel:
    def test_per_worker_rows(self, run_dir):
        model = build_top_model(run_dir.root)
        assert [w["worker"] for w in model["workers"]] == [0, 1]
        by_worker = {w["worker"]: w for w in model["workers"]}
        assert by_worker[0]["requests"] == 80
        assert by_worker[0]["hit_rate"] == pytest.approx(0.25)
        assert by_worker[1]["shard"] == "g0001-s001"
        assert by_worker[1]["shard_state"] == "leased"
        assert by_worker[0]["shard"] is None  # idle: owns nothing

    def test_totals_and_eta(self, run_dir):
        model = build_top_model(run_dir.root, now=10.0)
        assert model["totals"]["done"] == 1
        # created_ts=0, 1 of 3 shards done in 10 s -> 2 remain -> 20 s.
        assert model["eta_s"] == pytest.approx(20.0)

    def test_eta_absent_before_first_completion(self, run_dir):
        import os

        os.unlink(run_dir.done_path("g0001-s000"))
        model = build_top_model(run_dir.root)
        assert model["eta_s"] is None

    def test_stale_worker_flagged(self, run_dir):
        now = 1000.0
        _worker_snapshot(run_dir, 0, requests=80, ts=now - 60.0)
        _worker_snapshot(run_dir, 1, requests=40, ts=now - 0.1)
        model = build_top_model(run_dir.root, now=now)
        by_worker = {w["worker"]: w for w in model["workers"]}
        assert by_worker[0]["alive"] is False  # flushes stopped: presumed dead
        assert by_worker[1]["alive"] is True

    def test_instant_rate_from_previous_model(self, run_dir):
        prev = build_top_model(run_dir.root, now=100.0)
        _worker_snapshot(
            run_dir, 0, requests=180, hits=20,
            ts=prev["workers"][0]["snapshot_ts"] + 10.0,
        )
        model = build_top_model(run_dir.root, now=110.0, prev=prev)
        by_worker = {w["worker"]: w for w in model["workers"]}
        assert by_worker[0]["rate"] == pytest.approx(10.0)  # +100 in 10 s

    def test_initializing_directory_has_no_workers(self, tmp_path):
        model = build_top_model(str(tmp_path))
        assert model["state"] == "initializing"
        assert model["workers"] == []

    def test_model_is_json_ready(self, run_dir):
        json.dumps(build_top_model(run_dir.root))


class TestRender:
    def test_one_row_per_worker(self, run_dir):
        text = render_top(build_top_model(run_dir.root))
        assert "repro top" in text
        assert "1/3 done" in text
        lines = [l for l in text.splitlines() if l.lstrip().startswith(("0 ", "1 "))]
        assert len(lines) == 2
        assert "g0001-s001" in text

    def test_no_snapshots_hint(self, run_dir):
        import os

        for worker in (0, 1):
            os.unlink(run_dir.worker_metrics_path(worker))
        text = render_top(build_top_model(run_dir.root))
        assert "no worker snapshots yet" in text


class TestRunTop:
    def test_non_tty_degrades_to_one_shot(self, run_dir):
        out = io.StringIO()  # no isatty -> one frame, exit 0
        assert run_top(run_dir.root, out=out) == 0
        assert out.getvalue().count("repro top") == 1
        assert "\x1b[" not in out.getvalue()

    def test_once_flag_single_frame(self, run_dir):
        out = io.StringIO()
        assert run_top(run_dir.root, once=True, out=out) == 0
        assert out.getvalue().count("repro top") == 1

    def test_tty_repaints_in_place(self, run_dir):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        out = Tty()
        assert run_top(
            run_dir.root, interval_s=0.01, out=out, max_frames=2
        ) == 0
        assert out.getvalue().count("\x1b[H\x1b[J") == 2

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_top(str(tmp_path / "nowhere"), once=True, out=io.StringIO())
