"""Fingerprint-range sharding: determinism, coverage, round-trips."""

import hashlib

import pytest

from repro.distrib import DistribPaths, Shard, partition, shard_index


def _key(i):
    """A journal-shaped key with a uniform 64-bit trailing segment."""
    fp = hashlib.sha256(str(i).encode()).hexdigest()[:16]
    return f"aabbccddeeff0011:sf:{fp}"


class TestShardIndex:
    def test_in_range_and_deterministic(self):
        for count in (1, 2, 3, 7, 16):
            for i in range(200):
                index = shard_index(_key(i), count)
                assert 0 <= index < count
                assert index == shard_index(_key(i), count)

    def test_extremes_map_to_first_and_last(self):
        low = "ir:sf:" + "0" * 16
        high = "ir:sf:" + "f" * 16
        assert shard_index(low, 8) == 0
        assert shard_index(high, 8) == 7

    def test_spreads_over_buckets(self):
        hits = {shard_index(_key(i), 8) for i in range(200)}
        assert hits == set(range(8))

    def test_uses_only_the_trailing_segment(self):
        fp = "0123456789abcdef"
        assert shard_index(f"irA:sf:{fp}", 8) == shard_index(
            f"irB:ms:{fp}", 8
        )


class TestPartition:
    def _candidates(self, n):
        return [(_key(i), {"v": i}) for i in range(n)]

    def test_every_candidate_lands_in_exactly_one_shard(self):
        candidates = self._candidates(50)
        shards = partition(1, "irfp", "sf", candidates, 8)
        flattened = [pair for shard in shards for pair in shard.candidates]
        assert sorted(flattened) == sorted(
            (key, plan) for key, plan in candidates
        )

    def test_empty_buckets_are_dropped(self):
        shards = partition(1, "irfp", "sf", self._candidates(3), 16)
        assert all(shard.candidates for shard in shards)
        # The count is clamped to the candidate count first.
        assert len(shards) <= 3

    def test_shard_count_clamped_to_candidates(self):
        shards = partition(2, "irfp", "sf", self._candidates(2), 64)
        assert 1 <= len(shards) <= 2

    def test_sid_encodes_generation_and_index(self):
        shards = partition(7, "irfp", "sf", self._candidates(20), 4)
        assert all(shard.sid.startswith("g0007-s") for shard in shards)
        assert len({shard.sid for shard in shards}) == len(shards)

    def test_same_inputs_same_partition(self):
        candidates = self._candidates(30)
        first = partition(1, "irfp", "sf", candidates, 4)
        second = partition(1, "irfp", "sf", candidates, 4)
        assert first == second


class TestShardRoundTrip:
    def test_write_then_load(self, tmp_path):
        paths = DistribPaths(str(tmp_path)).ensure()
        shard = Shard(
            sid="g0001-s000",
            irfp="deadbeefdeadbeef",
            tag="sf",
            candidates=((_key(1), {"v": 1}), (_key(2), {"v": 2})),
        )
        shard.write(paths)
        assert Shard.load(paths, "g0001-s000") == shard
        assert paths.task_ids() == ["g0001-s000"]

    def test_load_missing_raises(self, tmp_path):
        paths = DistribPaths(str(tmp_path)).ensure()
        with pytest.raises(FileNotFoundError):
            Shard.load(paths, "g0001-s999")
