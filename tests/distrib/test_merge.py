"""Crash-safe merge: first-record-wins, torn tails, sibling journals."""

import json
import multiprocessing
import os

import pytest

from repro.distrib import DistribPaths, JournalTailReader
from repro.resilience import CheckpointError, TuningJournal


class TestMergeRecord:
    def _journal(self, tmp_path):
        return TuningJournal(str(tmp_path / "merged.jsonl"), device="P100")

    def test_first_record_wins(self, tmp_path):
        with self._journal(tmp_path) as journal:
            first = {"kind": "candidate", "key": "k1", "plan": {"v": 1}}
            second = {"kind": "candidate", "key": "k1", "plan": {"v": 2}}
            assert journal.merge_record(first) is True
            assert journal.merge_record(second) is False
            assert journal.lookup("k1")["plan"] == {"v": 1}
            assert journal.replayable == 1

    def test_headers_and_keyless_records_are_ignored(self, tmp_path):
        with self._journal(tmp_path) as journal:
            assert journal.merge_record({"kind": "header", "version": 1}) is False
            assert journal.merge_record({"kind": "candidate"}) is False
            assert len(journal) == 0

    def test_duplicate_failures_are_dropped(self, tmp_path):
        with self._journal(tmp_path) as journal:
            failure = {"kind": "failure", "key": "k1", "error": "Boom"}
            assert journal.merge_record(failure) is True
            assert journal.merge_record(dict(failure)) is False
            assert journal.replayable == 0  # failures never replay

    def test_candidate_supersedes_failure(self, tmp_path):
        # A SIGKILLed worker's failure then a stealer's success: the
        # success must win so the key replays instead of re-erroring.
        with self._journal(tmp_path) as journal:
            assert journal.merge_record(
                {"kind": "failure", "key": "k1", "error": "Boom"}
            )
            assert journal.merge_record(
                {"kind": "candidate", "key": "k1", "plan": {"v": 1}}
            )
            assert journal.lookup("k1")["plan"] == {"v": 1}

    def test_candidate_blocks_later_failure(self, tmp_path):
        with self._journal(tmp_path) as journal:
            assert journal.merge_record(
                {"kind": "candidate", "key": "k1", "plan": {"v": 1}}
            )
            assert not journal.merge_record(
                {"kind": "failure", "key": "k1", "error": "Boom"}
            )
            assert journal.lookup("k1")["plan"] == {"v": 1}

    def test_merged_records_survive_reopen(self, tmp_path):
        path = str(tmp_path / "merged.jsonl")
        with TuningJournal(path, device="P100") as journal:
            journal.merge_record(
                {"kind": "candidate", "key": "k1", "plan": {"v": 1},
                 "worker": 3, "stats": {"requests": 1}}
            )
        reopened = TuningJournal(path, device="P100")
        assert reopened.lookup("k1")["worker"] == 3
        reopened.close()

    def test_append_record_validates_shape(self, tmp_path):
        with self._journal(tmp_path) as journal:
            with pytest.raises(CheckpointError):
                journal.append_record({"kind": "nonsense", "key": "k1"})
            with pytest.raises(CheckpointError):
                journal.append_record({"kind": "candidate", "key": None})


def _write_sibling_journal(root, worker, count):
    """Child-process body: journal ``count`` records the worker way."""
    paths = DistribPaths(root)
    journal = TuningJournal(paths.worker_journal_path(worker), device="P100")
    for index in range(count):
        journal.append_record(
            {
                "kind": "candidate",
                "key": f"w{worker}-k{index}",
                "plan": {"worker": worker, "index": index},
                "worker": worker,
            }
        )
    journal.close()


class TestSiblingJournalMerge:
    def test_two_processes_one_directory_torn_tail_dropped(self, tmp_path):
        """Satellite: concurrent sibling appends merge without loss.

        Two real OS processes append to their own journals in one
        shared directory; afterwards one journal gains a torn trailing
        line (a simulated SIGKILL mid-append).  The merge must recover
        every intact record and drop exactly the torn tail.
        """
        root = str(tmp_path)
        paths = DistribPaths(root).ensure()
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_write_sibling_journal, args=(root, w, 25))
            for w in (0, 1)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=30.0)
            assert proc.exitcode == 0

        torn = {"kind": "candidate", "key": "w0-torn", "plan": {"v": 9}}
        with open(paths.worker_journal_path(0), "a", encoding="utf-8") as f:
            f.write(json.dumps(torn)[:-7])  # no newline: torn mid-write

        merged = TuningJournal(str(tmp_path / "merged.jsonl"), device="P100")
        absorbed = 0
        for worker in (0, 1):
            reader = JournalTailReader(paths.worker_journal_path(worker))
            for record in reader.poll():
                if record.get("kind") == "header":
                    continue
                if merged.merge_record(record):
                    absorbed += 1
        assert absorbed == 50
        for worker in (0, 1):
            for index in range(25):
                hit = merged.lookup(f"w{worker}-k{index}")
                assert hit is not None
                assert hit["plan"] == {"worker": worker, "index": index}
        assert merged.lookup("w0-torn") is None  # exactly the tail dropped
        merged.close()

        # The merged journal itself reloads cleanly.
        reloaded = TuningJournal(str(tmp_path / "merged.jsonl"), device="P100")
        assert reloaded.replayable == 50
        reloaded.close()

    def test_overlapping_keys_dedupe_across_journals(self, tmp_path):
        # Steal overlap: both workers evaluated the same keys; merging
        # both journals keeps one record per key.
        paths = DistribPaths(str(tmp_path)).ensure()
        for worker in (0, 1):
            with TuningJournal(
                paths.worker_journal_path(worker), device="P100"
            ) as journal:
                for index in range(10):
                    journal.append_record(
                        {
                            "kind": "candidate",
                            "key": f"shared-k{index}",
                            "plan": {"worker": worker},
                            "worker": worker,
                        }
                    )
        merged = TuningJournal(str(tmp_path / "merged.jsonl"), device="P100")
        absorbed = dropped = 0
        for worker in (0, 1):
            for record in JournalTailReader(
                paths.worker_journal_path(worker)
            ).poll():
                if record.get("kind") == "header":
                    continue
                if merged.merge_record(record):
                    absorbed += 1
                else:
                    dropped += 1
        assert absorbed == 10
        assert dropped == 10
        # First journal polled wins every key.
        for index in range(10):
            assert merged.lookup(f"shared-k{index}")["plan"] == {"worker": 0}
        merged.close()
