"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCharacteristics:
    def test_benchmark_name(self, capsys):
        assert main(["characteristics", "7pt-smoother"]) == 0
        out = capsys.readouterr().out
        assert "FLOPs per point : 10" in out
        assert "512x512x512" in out

    def test_dsl_file(self, tmp_path, capsys):
        spec = tmp_path / "simple.dsl"
        spec.write_text(
            """
            parameter N=64;
            iterator k, j, i;
            double a[N,N,N], b[N,N,N];
            copyin a;
            stencil s (b, a) { b[k][j][i] = a[k][j][i+1] + a[k][j][i-1]; }
            s (b, a);
            copyout b;
            """
        )
        assert main(["characteristics", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "stencil order   : 1" in out

    def test_missing_source(self):
        with pytest.raises(SystemExit):
            main(["characteristics", "no_such_thing"])


class TestSuite:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        for name in ("7pt-smoother", "rhs4sgcurv", "denoise"):
            assert name in out


class TestCuda:
    def test_emits_kernel(self, capsys):
        assert main(["cuda", "7pt-smoother"]) == 0
        out = capsys.readouterr().out
        assert "__global__" in out
        assert "cudaMemcpy" in out

    def test_unknown_device(self, capsys):
        # Unknown names resolve through the registry (UsageError, exit 2)
        # rather than an argparse choices= SystemExit, so --device accepts
        # profiles added via register_device().
        assert main(["cuda", "7pt-smoother", "--device", "H100"]) == 2
        err = capsys.readouterr().err
        assert "unknown device 'H100'" in err
        assert "P100" in err


class TestProfile:
    def test_prints_metrics_and_verdict(self, capsys):
        assert main(["profile", "7pt-smoother"]) == 0
        out = capsys.readouterr().out
        assert "flop_count_dp" in out
        assert "bound at:" in out
        assert "OI_dram" in out


class TestOptimize:
    def test_iterative_flow(self, capsys):
        assert main(["optimize", "7pt-smoother", "--top-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "ARTEMIS optimization report" in out
        assert "tipping point" in out

    def test_custom_iterations(self, capsys):
        assert main([
            "optimize", "7pt-smoother", "-T", "5", "--top-k", "1"
        ]) == 0
        out = capsys.readouterr().out
        assert "T=5" in out


class TestDeepTune:
    def test_smoother(self, capsys):
        assert main(["deep-tune", "7pt-smoother", "-T", "13"]) == 0
        out = capsys.readouterr().out
        assert "tipping point" in out
        assert "schedule for T=13" in out

    def test_rejects_spatial(self):
        with pytest.raises(SystemExit):
            main(["deep-tune", "rhs4center"])


class TestSuiteOutput:
    def test_exit_code_and_header(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("benchmark")
        assert "notes" in out.splitlines()[0]

    def test_rejects_extra_arguments(self):
        with pytest.raises(SystemExit):
            main(["suite", "7pt-smoother"])


class TestCudaOutput:
    def test_dsl_file_input(self, tmp_path, capsys):
        spec = tmp_path / "s.dsl"
        spec.write_text(
            """
            parameter N=64;
            iterator k, j, i;
            double a[N,N,N], b[N,N,N];
            copyin a;
            stencil s (b, a) { b[k][j][i] = a[k][j][i+1] + a[k][j][i-1]; }
            s (b, a);
            copyout b;
            """
        )
        assert main(["cuda", str(spec)]) == 0
        out = capsys.readouterr().out
        assert out.count("{") == out.count("}")

    def test_missing_source_exits_nonzero(self):
        with pytest.raises(SystemExit) as exc:
            main(["cuda", "no_such_benchmark"])
        assert exc.value.code != 0


class TestProfileOutput:
    def test_v100_device(self, capsys):
        assert main(["profile", "7pt-smoother", "--device", "V100"]) == 0
        out = capsys.readouterr().out
        assert "bound at:" in out

    def test_unknown_device_exits_nonzero(self, capsys):
        assert main(["profile", "7pt-smoother", "--device", "H100"]) == 2
        assert "unknown device 'H100'" in capsys.readouterr().err


class TestObservabilityFlags:
    """--trace / --metrics end-to-end through the real subcommands."""

    def _load_trace(self, path):
        import json

        with open(path) as handle:
            return json.load(handle)

    def _span_names(self, document):
        return {
            e["name"] for e in document["traceEvents"] if e.get("ph") == "X"
        }

    def test_optimize_trace_covers_every_phase(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main([
            "optimize", "7pt-smoother", "--top-k", "1", "--trace", str(trace)
        ]) == 0
        document = self._load_trace(trace)
        names = self._span_names(document)

        def covered(phase):
            return any(
                n == phase or n.startswith(phase + ".") for n in names
            )

        for phase in ("parse", "analysis", "planning", "tuning.stage1",
                      "tuning.stage2", "simulate", "optimize", "deep_tune"):
            assert covered(phase), f"missing phase span: {phase}"
        # Metrics ride along and mirror the evaluation-engine stats.
        metrics = document["otherData"]["metrics"]
        assert metrics["eval.requests"]["value"] > 0
        assert metrics["eval.simulations"]["value"] > 0
        assert metrics["simulate.calls"]["value"] > 0
        err = capsys.readouterr().err
        assert "spans written" in err

    def test_trace_report_includes_phase_table(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main([
            "optimize", "7pt-smoother", "--top-k", "1", "--trace", str(trace)
        ]) == 0
        out = capsys.readouterr().out
        assert "phase timings:" in out
        assert "total ms" in out

    def test_metrics_flag_prints_table(self, capsys):
        assert main([
            "optimize", "7pt-smoother", "--top-k", "1", "--metrics"
        ]) == 0
        out = capsys.readouterr().out
        assert "pipeline metrics:" in out
        assert "eval.requests" in out
        assert "tuner.stage1.candidates" in out

    def test_flat_trace_format(self, tmp_path):
        trace = tmp_path / "flat.json"
        assert main([
            "optimize", "7pt-smoother", "--top-k", "1",
            "--trace", str(trace), "--trace-format", "flat",
        ]) == 0
        document = self._load_trace(trace)
        assert "spans" in document and "metrics" in document
        assert any(s["name"] == "optimize" for s in document["spans"])

    def test_profile_trace(self, tmp_path):
        trace = tmp_path / "p.json"
        assert main(["profile", "7pt-smoother", "--trace", str(trace)]) == 0
        names = self._span_names(self._load_trace(trace))
        assert "profile" in names
        assert "lower" in names

    def test_deep_tune_trace(self, tmp_path):
        trace = tmp_path / "d.json"
        assert main([
            "deep-tune", "7pt-smoother", "-T", "6", "--trace", str(trace)
        ]) == 0
        names = self._span_names(self._load_trace(trace))
        assert "deep_tune" in names
        assert "deep_tune.degree" in names
        assert "planning" in names

    def test_collection_disabled_after_run(self, tmp_path):
        from repro.obs import metrics_enabled, tracing_enabled

        trace = tmp_path / "t.json"
        assert main([
            "optimize", "7pt-smoother", "--top-k", "1",
            "--trace", str(trace), "--metrics",
        ]) == 0
        assert not tracing_enabled()
        assert not metrics_enabled()

    def test_no_flags_records_nothing(self, capsys):
        from repro.obs import get_tracer

        before = len(get_tracer().finished())
        assert main(["optimize", "7pt-smoother", "--top-k", "1"]) == 0
        assert len(get_tracer().finished()) == before
        assert "phase timings:" not in capsys.readouterr().out


class TestSearchObservatoryCli:
    """--search-log / --explain / --json plus `report` and `bench`."""

    @pytest.fixture(scope="class")
    def search_run(self, tmp_path_factory):
        import contextlib
        import io

        tmp = tmp_path_factory.mktemp("search")
        log = tmp / "out.jsonl"
        payload = tmp / "out.json"
        out_io, err_io = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out_io), \
                contextlib.redirect_stderr(err_io):
            code = main([
                "optimize", "addsgd4", "--top-k", "1",
                "--explain", "--search-log", str(log),
                "--json", str(payload),
            ])
        return code, out_io.getvalue(), err_io.getvalue(), log, payload

    def test_explain_prints_winner_block(self, search_run):
        code, out, err, _, _ = search_run
        assert code == 0
        assert "why this plan" in out
        assert "convergence" in out
        assert "search log:" in err

    def test_search_log_invariant_matches_json_stats(self, search_run):
        import json

        from repro.obs.search import read_events

        code, _, _, log, payload = search_run
        assert code == 0
        events = read_events(str(log))
        assert events[0]["kind"] == "header"
        candidates = [e for e in events if e["kind"] == "candidate"]
        document = json.loads(payload.read_text())
        assert len(candidates) == document["eval_stats"]["requests"]

    def test_json_payload_shape(self, search_run):
        import json

        _, _, _, _, payload = search_run
        document = json.loads(payload.read_text())
        assert document["spec"] == "addsgd4"
        assert document["device"] == "P100"
        assert document["tflops"] > 0
        assert document["schedule"]
        assert document["explain"]["winner_candidate"]["fingerprint"]

    def test_report_renders_html(self, search_run, tmp_path):
        _, _, _, log, _ = search_run
        html = tmp_path / "r.html"
        assert main(["report", str(log), "-o", str(html)]) == 0
        document = html.read_text()
        assert document.startswith("<!DOCTYPE html>")
        assert "<svg" in document
        assert "Roofline" in document

    def test_report_default_output_path(self, search_run):
        _, _, _, log, _ = search_run
        assert main(["report", str(log)]) == 0
        assert log.with_suffix(".html").exists()

    def test_report_missing_log_is_usage_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read search log" in capsys.readouterr().err


class TestProfileJson:
    def test_json_payload(self, tmp_path, capsys):
        import json

        payload = tmp_path / "p.json"
        assert main([
            "profile", "7pt-smoother", "--json", str(payload)
        ]) == 0
        document = json.loads(payload.read_text())
        assert document["spec"] == "7pt-smoother"
        assert document["device"] == "P100"
        entry = document["kernels"][0]
        assert entry["plan"]
        assert "flop_count_dp" in entry["metrics"]
        assert entry["bound_level"]
        assert set(entry["verdicts"]) == {"dram", "tex", "shm"}


class TestBenchCli:
    @pytest.fixture(scope="class")
    def bench_out(self, tmp_path_factory):
        import contextlib
        import io

        out = tmp_path_factory.mktemp("bench") / "current.json"
        with contextlib.redirect_stdout(io.StringIO()), \
                contextlib.redirect_stderr(io.StringIO()):
            code = main([
                "bench", "--benchmarks", "addsgd4", "--out", str(out)
            ])
        assert code == 0
        return out

    def test_results_schema(self, bench_out):
        import json

        document = json.loads(bench_out.read_text())
        entry = document["benchmarks"]["addsgd4"]
        assert entry["requests"] > 0
        assert entry["best_gflops"] > 0
        assert entry["variant"]

    def test_check_passes_against_own_baseline(self, bench_out, capsys):
        assert main([
            "bench", "--benchmarks", "addsgd4",
            "--check", "--baseline", str(bench_out),
        ]) == 0
        assert "no regressions vs baseline" in capsys.readouterr().out

    def test_check_fails_on_injected_regression(
        self, bench_out, tmp_path, capsys
    ):
        import json

        baseline = json.loads(bench_out.read_text())
        entry = baseline["benchmarks"]["addsgd4"]
        entry["requests"] = int(entry["requests"] * 0.7)
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(baseline))
        assert main([
            "bench", "--benchmarks", "addsgd4",
            "--check", "--baseline", str(doctored),
        ]) == 1
        assert "requests" in capsys.readouterr().out

    def test_unknown_benchmark_is_usage_error(self, capsys):
        assert main(["bench", "--benchmarks", "no-such-bench"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_check_without_baseline_is_usage_error(self, tmp_path, capsys):
        assert main([
            "bench", "--benchmarks", "addsgd4",
            "--check", "--baseline", str(tmp_path / "absent.json"),
        ]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestLiveObservatory:
    """--metrics-port, p50/p95 metric columns, and `repro top`."""

    @staticmethod
    def _free_port():
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def test_metrics_port_serves_during_run(self, capsys):
        import threading
        import time
        import urllib.request

        port = self._free_port()
        scrapes = []
        done = threading.Event()

        def scrape():
            # Poll until a scrape shows evaluation traffic: early frames
            # legitimately carry only parse/analysis counters.
            url = f"http://127.0.0.1:{port}/metrics"
            while not done.is_set():
                try:
                    with urllib.request.urlopen(url, timeout=1) as response:
                        body = response.read().decode()
                        scrapes.append((response.status, body))
                        if "repro_eval_requests_total" in body:
                            return
                except OSError:
                    pass
                time.sleep(0.01)

        thread = threading.Thread(target=scrape, daemon=True)
        thread.start()
        try:
            assert main([
                "optimize", "7pt-smoother", "--top-k", "1",
                "--metrics-port", str(port),
            ]) == 0
        finally:
            done.set()
        thread.join(timeout=5)
        assert scrapes, "endpoint never answered while the run was live"
        assert all(status == 200 for status, _ in scrapes)
        assert scrapes[0][1].startswith("# HELP")  # valid exposition text
        assert any(
            "repro_eval_requests_total" in body for _, body in scrapes
        ), "no scrape observed evaluation counters mid-run"
        assert f"serving http://127.0.0.1:{port}" in capsys.readouterr().err

    def test_metrics_table_has_quantiles(self, capsys):
        assert main([
            "optimize", "7pt-smoother", "--top-k", "1", "--metrics"
        ]) == 0
        out = capsys.readouterr().out
        assert "p50=" in out and "p95=" in out

    def test_metrics_port_parses_on_deep_tune(self):
        args = build_parser().parse_args(
            ["deep-tune", "7pt-smoother", "--metrics-port", "0"]
        )
        assert args.metrics_port == 0

    def _fake_run_dir(self, tmp_path):
        from repro.distrib import DistribPaths
        from repro.obs import MetricsRegistry, build_snapshot, write_snapshot
        from repro.resilience.atomic import atomic_write_json

        paths = DistribPaths(str(tmp_path)).ensure()
        atomic_write_json(
            paths.config_path,
            {"device": "P100", "workers": 1, "lease_ttl": 2.0,
             "created_ts": 0.0},
        )
        registry = MetricsRegistry()
        registry.counter("eval.requests").add(10)
        write_snapshot(
            paths.worker_metrics_path(0),
            build_snapshot(0, registry=registry, seq=1),
        )
        return paths

    def test_top_once_exits_zero_with_worker_rows(self, tmp_path, capsys):
        self._fake_run_dir(tmp_path)
        assert main(["top", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "ev/s" in out

    def test_top_missing_directory_is_usage_error(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nowhere")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_shard_status_json_has_iso_timestamps(self, tmp_path, capsys):
        import json

        self._fake_run_dir(tmp_path)
        assert main(["shard-status", str(tmp_path), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["scanned_iso"].endswith("Z")
        assert info["created_iso"] == "1970-01-01T00:00:00Z"
