"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCharacteristics:
    def test_benchmark_name(self, capsys):
        assert main(["characteristics", "7pt-smoother"]) == 0
        out = capsys.readouterr().out
        assert "FLOPs per point : 10" in out
        assert "512x512x512" in out

    def test_dsl_file(self, tmp_path, capsys):
        spec = tmp_path / "simple.dsl"
        spec.write_text(
            """
            parameter N=64;
            iterator k, j, i;
            double a[N,N,N], b[N,N,N];
            copyin a;
            stencil s (b, a) { b[k][j][i] = a[k][j][i+1] + a[k][j][i-1]; }
            s (b, a);
            copyout b;
            """
        )
        assert main(["characteristics", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "stencil order   : 1" in out

    def test_missing_source(self):
        with pytest.raises(SystemExit):
            main(["characteristics", "no_such_thing"])


class TestSuite:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        for name in ("7pt-smoother", "rhs4sgcurv", "denoise"):
            assert name in out


class TestCuda:
    def test_emits_kernel(self, capsys):
        assert main(["cuda", "7pt-smoother"]) == 0
        out = capsys.readouterr().out
        assert "__global__" in out
        assert "cudaMemcpy" in out

    def test_unknown_device(self):
        with pytest.raises(SystemExit):
            main(["cuda", "7pt-smoother", "--device", "H100"])


class TestProfile:
    def test_prints_metrics_and_verdict(self, capsys):
        assert main(["profile", "7pt-smoother"]) == 0
        out = capsys.readouterr().out
        assert "flop_count_dp" in out
        assert "bound at:" in out
        assert "OI_dram" in out


class TestOptimize:
    def test_iterative_flow(self, capsys):
        assert main(["optimize", "7pt-smoother", "--top-k", "1"]) == 0
        out = capsys.readouterr().out
        assert "ARTEMIS optimization report" in out
        assert "tipping point" in out

    def test_custom_iterations(self, capsys):
        assert main([
            "optimize", "7pt-smoother", "-T", "5", "--top-k", "1"
        ]) == 0
        out = capsys.readouterr().out
        assert "T=5" in out


class TestDeepTune:
    def test_smoother(self, capsys):
        assert main(["deep-tune", "7pt-smoother", "-T", "13"]) == 0
        out = capsys.readouterr().out
        assert "tipping point" in out
        assert "schedule for T=13" in out

    def test_rejects_spatial(self):
        with pytest.raises(SystemExit):
            main(["deep-tune", "rhs4center"])
