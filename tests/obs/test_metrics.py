"""Unit tests for the metrics registry."""

import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    get_metrics,
    metrics_enabled,
)


class TestTypes:
    def test_counter_accumulates(self):
        c = Counter("hits")
        c.add()
        c.add(4)
        assert c.value == 5
        assert c.as_dict() == {"type": "counter", "value": 5}

    def test_counter_rejects_negative(self):
        c = Counter("hits")
        with pytest.raises(ValueError):
            c.add(-1)

    def test_gauge_set_and_add(self):
        g = Gauge("size")
        g.set(10)
        g.add(-3)
        assert g.value == 7
        assert g.as_dict()["type"] == "gauge"

    def test_histogram_summary(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 3
        assert d["sum"] == 6.0
        assert d["min"] == 1.0 and d["max"] == 3.0
        assert d["mean"] == 2.0

    def test_histogram_reservoir_bounded(self):
        h = Histogram("lat", capacity=4)
        for v in range(100):
            h.observe(v)
        assert h.count == 100
        assert len(h._recent) == 4
        assert h._recent == [96.0, 97.0, 98.0, 99.0]

    def test_empty_histogram_is_finite(self):
        d = Histogram("lat").as_dict()
        assert d["count"] == 0 and d["min"] == 0.0 and d["mean"] == 0.0


class TestRegistry:
    def test_created_on_first_use_then_shared(self):
        reg = MetricsRegistry()
        a = reg.counter("x")
        b = reg.counter("x")
        assert a is b
        assert len(reg) == 1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").add(2)
        reg.gauge("a").set(1.5)
        reg.histogram("c").observe(0.25)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        json.dumps(snap)  # must serialize without a custom encoder

    def test_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("x").add()
        reg.reset()
        assert len(reg) == 0

    def test_concurrent_increments_are_exact(self):
        reg = MetricsRegistry()

        def work():
            c = reg.counter("shared")
            for _ in range(1000):
                c.add()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("shared").value == 8000


class TestGlobalRegistry:
    def test_disabled_by_default(self):
        assert not metrics_enabled()

    def test_configure_toggles_and_resets(self):
        reg = configure_metrics(True, reset=True)
        try:
            assert metrics_enabled()
            assert reg is get_metrics()
            reg.counter("t").add()
            assert len(reg) == 1
        finally:
            configure_metrics(False, reset=True)
        assert not metrics_enabled()
        assert len(get_metrics()) == 0

    def test_eval_stats_publish_respects_flag(self):
        from repro.tuning.evaluator import EvalStats

        stats = EvalStats(requests=3, hits=1, misses=2, wall_s=0.5, cpu_s=0.5)
        stats.publish()  # disabled: must record nothing
        assert len(get_metrics()) == 0
        configure_metrics(True, reset=True)
        try:
            stats.publish()
            snap = get_metrics().snapshot()
            assert snap["eval.requests"]["value"] == 3
            assert snap["eval.wall_s"]["count"] == 1
            assert snap["eval.wall_s"]["sum"] == 0.5
        finally:
            configure_metrics(False, reset=True)
