"""Unit tests for the metrics registry."""

import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    get_metrics,
    metrics_enabled,
)


class TestTypes:
    def test_counter_accumulates(self):
        c = Counter("hits")
        c.add()
        c.add(4)
        assert c.value == 5
        assert c.as_dict() == {"type": "counter", "value": 5}

    def test_counter_rejects_negative(self):
        c = Counter("hits")
        with pytest.raises(ValueError):
            c.add(-1)

    def test_gauge_set_and_add(self):
        g = Gauge("size")
        g.set(10)
        g.add(-3)
        assert g.value == 7
        assert g.as_dict()["type"] == "gauge"

    def test_histogram_summary(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 3
        assert d["sum"] == 6.0
        assert d["min"] == 1.0 and d["max"] == 3.0
        assert d["mean"] == 2.0

    def test_histogram_reservoir_bounded(self):
        h = Histogram("lat", capacity=4)
        for v in range(100):
            h.observe(v)
        assert h.count == 100
        assert len(h._recent) == 4
        assert h._recent == [96.0, 97.0, 98.0, 99.0]

    def test_empty_histogram_is_finite(self):
        d = Histogram("lat").as_dict()
        assert d["count"] == 0 and d["min"] == 0.0 and d["mean"] == 0.0


class TestQuantiles:
    def test_exact_at_extremes(self):
        h = Histogram("lat")
        for v in (0.002, 0.004, 0.07, 0.3):
            h.observe(v)
        assert h.quantile(0.0) == 0.002
        assert h.quantile(1.0) == 0.3

    def test_median_lands_in_crossing_bucket(self):
        h = Histogram("lat")
        for _ in range(100):
            h.observe(0.02)  # all in the (0.01, 0.025] bucket
        assert 0.01 <= h.quantile(0.5) <= 0.025

    def test_monotone_in_q(self):
        h = Histogram("lat")
        for v in (0.0001, 0.002, 0.02, 0.2, 2.0, 20.0):
            h.observe(v)
        quantiles = [h.quantile(q / 10) for q in range(11)]
        assert quantiles == sorted(quantiles)

    def test_empty_is_zero(self):
        assert Histogram("lat").quantile(0.5) == 0.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_quantile_from_dict_matches_live(self):
        h = Histogram("lat")
        for v in (0.001, 0.02, 0.4, 3.0):
            h.observe(v)
        d = h.as_dict()
        for q in (0.0, 0.5, 0.95, 1.0):
            assert Histogram.quantile_from_dict(d, q) == h.quantile(q)

    def test_legacy_snapshot_without_buckets(self):
        d = {"type": "histogram", "count": 2, "min": 1.0, "max": 3.0}
        assert Histogram.quantile_from_dict(d, 0.5) == 2.0


class TestMergeDicts:
    def test_counter_merge_sums(self):
        a, b = Counter("n"), Counter("n")
        a.add(3)
        b.add(4)
        a.merge_dict(b.as_dict())
        assert a.value == 7

    def test_gauge_merge_newest_wins(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1.0, ts=100.0)
        b.set(2.0, ts=50.0)  # older write must not clobber
        a.merge_dict(b.as_dict())
        assert a.value == 1.0
        b.merge_dict(a.as_dict())
        assert b.value == 1.0

    def test_histogram_merge_bins_and_extremes(self):
        a, b = Histogram("h"), Histogram("h")
        a.observe(0.001)
        b.observe(5.0)
        b.observe(0.3)
        a.merge_dict(b.as_dict())
        assert a.count == 3
        assert a.quantile(0.0) == 0.001 and a.quantile(1.0) == 5.0

    def test_histogram_merge_empty_is_noop(self):
        a = Histogram("h")
        a.observe(1.0)
        a.merge_dict(Histogram("h", bounds=(1.0, 2.0)).as_dict())
        assert a.count == 1  # empty snapshot merges even with odd bounds

    def test_histogram_bounds_mismatch_raises(self):
        a = Histogram("h")
        other = Histogram("h", bounds=(1.0, 2.0))
        other.observe(1.5)
        with pytest.raises(ValueError):
            a.merge_dict(other.as_dict())

    def test_registry_merge_snapshot_creates_and_folds(self):
        source = MetricsRegistry()
        source.counter("c").add(2)
        source.gauge("g").set(5)
        source.histogram("h").observe(0.1)
        target = MetricsRegistry()
        target.counter("c").add(1)
        target.merge_snapshot(source.snapshot())
        assert target.counter("c").value == 3
        assert target.gauge("g").value == 5
        assert target.histogram("h").count == 1

    def test_registry_merge_snapshot_excludes_prefixes(self):
        source = MetricsRegistry()
        source.counter("eval.requests").add(2)
        source.counter("distrib.steals").add(1)
        target = MetricsRegistry()
        target.merge_snapshot(source.snapshot(), exclude_prefixes=("eval.",))
        assert "eval.requests" not in target.snapshot()
        assert target.counter("distrib.steals").value == 1


class TestRegistry:
    def test_created_on_first_use_then_shared(self):
        reg = MetricsRegistry()
        a = reg.counter("x")
        b = reg.counter("x")
        assert a is b
        assert len(reg) == 1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_sorted_and_json_ready(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").add(2)
        reg.gauge("a").set(1.5)
        reg.histogram("c").observe(0.25)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        json.dumps(snap)  # must serialize without a custom encoder

    def test_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("x").add()
        reg.reset()
        assert len(reg) == 0

    def test_concurrent_increments_are_exact(self):
        reg = MetricsRegistry()

        def work():
            c = reg.counter("shared")
            for _ in range(1000):
                c.add()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("shared").value == 8000


class TestGlobalRegistry:
    def test_disabled_by_default(self):
        assert not metrics_enabled()

    def test_configure_toggles_and_resets(self):
        reg = configure_metrics(True, reset=True)
        try:
            assert metrics_enabled()
            assert reg is get_metrics()
            reg.counter("t").add()
            assert len(reg) == 1
        finally:
            configure_metrics(False, reset=True)
        assert not metrics_enabled()
        assert len(get_metrics()) == 0

    def test_eval_stats_publish_respects_flag(self):
        from repro.tuning.evaluator import EvalStats

        stats = EvalStats(requests=3, hits=1, misses=2, wall_s=0.5, cpu_s=0.5)
        stats.publish()  # disabled: must record nothing
        assert len(get_metrics()) == 0
        configure_metrics(True, reset=True)
        try:
            stats.publish()
            snap = get_metrics().snapshot()
            assert snap["eval.requests"]["value"] == 3
            assert snap["eval.wall_s"]["count"] == 1
            assert snap["eval.wall_s"]["sum"] == 0.5
        finally:
            configure_metrics(False, reset=True)
