"""Prometheus exposition contract and the /metrics endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry, prometheus_name, prometheus_text
from repro.obs.prom import (
    CONTENT_TYPE,
    MetricsHTTPServer,
    _escape_label_value,
)


def _scrape(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, dict(response.headers), response.read().decode()


class TestNames:
    def test_dots_become_underscores_with_namespace(self):
        assert prometheus_name("eval.requests") == "repro_eval_requests"

    def test_invalid_chars_sanitized(self):
        assert prometheus_name("a-b c/d") == "repro_a_b_c_d"

    def test_no_namespace_leading_digit_guarded(self):
        assert prometheus_name("9lives", namespace="")[0] == "_"


class TestLabelEscaping:
    def test_backslash_newline_quote(self):
        assert _escape_label_value('a\\b\n"c"') == 'a\\\\b\\n\\"c\\"'

    def test_escaped_labels_in_exposition(self):
        reg = MetricsRegistry()
        reg.counter("x").add(1)
        text = prometheus_text(reg, labels={"path": 'C:\\tmp\n"x"'})
        assert 'path="C:\\\\tmp\\n\\"x\\""' in text


class TestExposition:
    def test_counter_gains_total_suffix(self):
        reg = MetricsRegistry()
        reg.counter("eval.requests").add(7)
        text = prometheus_text(reg)
        assert "# TYPE repro_eval_requests_total counter" in text
        assert "repro_eval_requests_total 7\n" in text

    def test_gauge_plain(self):
        reg = MetricsRegistry()
        reg.gauge("queue.depth").set(3)
        text = prometheus_text(reg)
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 3\n" in text

    def test_histogram_bucket_sum_count_contract(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.0005, 0.002, 0.002, 5000.0):  # last lands past all bounds
            h.observe(v)
        text = prometheus_text(reg)
        lines = [l for l in text.splitlines() if not l.startswith("#")]
        buckets = [l for l in lines if l.startswith("repro_lat_bucket")]
        # cumulative and +Inf-terminated
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts)
        assert buckets[-1].startswith('repro_lat_bucket{le="+Inf"}')
        assert counts[-1] == 4
        assert "repro_lat_count 4" in text
        assert any(l.startswith("repro_lat_sum ") for l in lines)

    def test_histogram_inf_bucket_counts_out_of_range(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(10_000.0)  # beyond every finite bound
        text = prometheus_text(reg)
        finite = [
            l
            for l in text.splitlines()
            if l.startswith("repro_lat_bucket") and '+Inf' not in l
        ]
        assert all(l.endswith(" 0") for l in finite)
        assert 'repro_lat_bucket{le="+Inf"} 1' in text

    def test_deterministic_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z.last").add(1)
        reg.gauge("a.first").set(2)
        reg.histogram("m.middle").observe(0.1)
        first, second = prometheus_text(reg), prometheus_text(reg)
        assert first == second
        order = [
            l.split()[2]
            for l in first.splitlines()
            if l.startswith("# TYPE")
        ]
        assert order == sorted(order)

    def test_snapshot_dict_accepted(self):
        reg = MetricsRegistry()
        reg.counter("x").add(2)
        assert prometheus_text(reg.snapshot()) == prometheus_text(reg)

    def test_empty_registry_empty_text(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestEndpoint:
    def test_metrics_and_healthz(self):
        reg = MetricsRegistry()
        reg.counter("eval.requests").add(5)
        with MetricsHTTPServer(collect=lambda: reg) as server:
            status, headers, body = _scrape(server.url)
            assert status == 200
            assert headers["Content-Type"] == CONTENT_TYPE
            assert "repro_eval_requests_total 5" in body
            base = server.url.rsplit("/", 1)[0]
            status, _, body = _scrape(f"{base}/healthz")
            assert status == 200 and body == "ok\n"

    def test_unknown_path_404(self):
        with MetricsHTTPServer(collect=MetricsRegistry) as server:
            base = server.url.rsplit("/", 1)[0]
            with pytest.raises(urllib.error.HTTPError) as err:
                _scrape(f"{base}/nope")
            assert err.value.code == 404

    def test_collect_failure_500_not_crash(self):
        def boom():
            raise RuntimeError("collapse")

        with MetricsHTTPServer(collect=boom) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                _scrape(server.url)
            assert err.value.code == 500
            # server survives: a later scrape still answers
            base = server.url.rsplit("/", 1)[0]
            status, _, _ = _scrape(f"{base}/healthz")
            assert status == 200

    def test_collect_may_return_text(self):
        with MetricsHTTPServer(collect=lambda: "canned 1\n") as server:
            status, _, body = _scrape(server.url)
            assert status == 200 and body == "canned 1\n"

    def test_binds_loopback_by_default(self):
        server = MetricsHTTPServer()
        assert server.url.startswith("http://127.0.0.1:")
