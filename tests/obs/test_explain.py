"""Explain-engine tests: winner joins, deltas, convergence, rendering."""

import json

import pytest

from repro.obs.explain import build_explain, format_explain
from repro.obs.search import SearchLog
from repro.pipeline import optimize
from repro.resilience import UsageError
from repro.suite import load_ir
from repro.tuning import PlanEvaluator


def _synthetic_events():
    """A tiny hand-built event stream with a known winner and losers."""

    def candidate(seq, fp, gflops, dram, spill=0.0, bottleneck="dram"):
        return {
            "kind": "candidate",
            "seq": seq,
            "t_ms": float(seq),
            "fingerprint": fp,
            "family": f"fam-{fp}",
            "plan": f"plan-{fp}",
            "config": {"block": [32, 8]},
            "disposition": "simulated",
            "gflops": gflops,
            "time_ms": 1.0,
            "occupancy": 0.5,
            "bottleneck": bottleneck,
            "counters": {
                "dram_bytes": dram,
                "tex_bytes": 2.0 * dram,
                "shm_bytes": 0.0,
                "spill_bytes": spill,
                "flops": 1e9,
            },
        }

    return [
        {
            "kind": "header",
            "version": 1,
            "t0_s": 0.0,
            "device": {"name": "P100", "peak_gflops": 4700.0,
                       "dram_bw_gbs": 732.0, "ridge_dram": 6.42},
        },
        candidate(1, "aaa", 100.0, dram=4e9, spill=1e8),
        candidate(2, "bbb", 300.0, dram=2e9),
        candidate(3, "aaa", 100.0, dram=4e9, spill=1e8),  # cache revisit
        candidate(4, "ccc", 500.0, dram=1e9, bottleneck="shm"),
        {"kind": "prune", "seq": 5, "t_ms": 5.0, "plan": "p",
         "family": "f", "reason": "spills at every register level"},
        {
            "kind": "advice", "seq": 6, "t_ms": 6.0, "kernel": "k0",
            "bound_level": "dram", "occupancy": 0.5,
            "rules": ["rule one fired"], "suppressed": ["loop unrolling"],
            "flags": {},
        },
        {
            "kind": "winner", "seq": 7, "t_ms": 7.0, "variant": "tuned",
            "tflops": 0.5, "evaluations": 4,
            "plans": [{"fingerprint": "ccc", "plan": "plan-ccc", "count": 1}],
        },
        {"kind": "phase", "seq": 8, "t_ms": 8.0, "name": "tuning",
         "count": 1, "total_ms": 10.0, "self_ms": 4.0},
        {"kind": "summary", "seq": 9, "t_ms": 9.0,
         "stats": {"requests": 4, "hits": 1}, "counts": {"candidate": 4}},
    ]


class TestBuildExplain:
    def test_empty_stream_is_a_usage_error(self):
        with pytest.raises(UsageError):
            build_explain([])

    def test_winner_joined_by_fingerprint(self):
        report = build_explain(_synthetic_events())
        assert report.winner["variant"] == "tuned"
        assert report.winner_candidate.fingerprint == "ccc"
        assert report.winner_candidate.gflops == 500.0

    def test_runners_ranked_and_distinct(self):
        report = build_explain(_synthetic_events(), top_k=3)
        fps = [r.candidate.fingerprint for r in report.runners]
        assert fps == ["bbb", "aaa"]  # distinct, best-first, winner excluded
        assert report.runners[0].gflops_gap_pct == pytest.approx(40.0)

    def test_counter_deltas_vs_winner(self):
        report = build_explain(_synthetic_events())
        runner_aaa = report.runners[1]
        value, winner_value, ratio = runner_aaa.deltas["dram_bytes"]
        assert value == 4e9 and winner_value == 1e9
        assert ratio == pytest.approx(4.0)

    def test_convergence_is_monotone_improvements_only(self):
        report = build_explain(_synthetic_events())
        assert [g for _, g in report.convergence] == [100.0, 300.0, 500.0]

    def test_dispositions_markers_and_stats(self):
        report = build_explain(_synthetic_events())
        assert report.dispositions == {"simulated": 4}
        assert report.markers == {"prune": 1}
        assert report.stats["requests"] == 4
        assert report.candidates == 4
        assert report.distinct_plans == 3

    def test_as_dict_is_json_serializable(self):
        payload = build_explain(_synthetic_events()).as_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded["winner_candidate"]["fingerprint"] == "ccc"
        assert len(decoded["runners_up"]) == 2
        assert decoded["phases"][0]["name"] == "tuning"

    def test_no_measured_candidates(self):
        events = [
            {"kind": "header", "version": 1, "t0_s": 0.0},
            {"kind": "candidate", "seq": 1, "t_ms": 1.0,
             "fingerprint": "x", "family": "f", "plan": "p",
             "config": {}, "disposition": "infeasible",
             "reason": "block too big"},
        ]
        report = build_explain(events)
        assert report.winner_candidate is None
        assert report.runners == ()
        text = format_explain(report)
        assert "nothing to explain" in text


class TestFormatExplain:
    def test_mentions_winner_runners_and_rules(self):
        text = format_explain(build_explain(_synthetic_events()))
        assert "why this plan" in text
        assert "plan-ccc" in text
        assert "runner-up #1" in text
        assert "rule one fired" in text
        assert "suppressed: loop unrolling" in text
        assert "convergence" in text

    def test_identical_counters_not_listed(self):
        text = format_explain(build_explain(_synthetic_events()))
        # runner bbb has spill_bytes == winner's (0.0): no spill row for it
        head = text.split("runner-up #2")[0]
        assert "spill_bytes" not in head.split("runner-up #1")[1]


class TestOnRealPipeline:
    @pytest.fixture(scope="class")
    def real_report(self):
        log = SearchLog()
        engine = PlanEvaluator(search_log=log)
        outcome = optimize(load_ir("addsgd4"), top_k=2, evaluator=engine)
        log.summary(outcome.eval_stats)
        return build_explain(log.events()), outcome

    def test_winner_matches_outcome(self, real_report):
        report, outcome = real_report
        assert report.winner["variant"] == outcome.variant
        assert report.winner_candidate is not None
        assert report.candidates == outcome.eval_stats.requests

    def test_advice_present_for_spatial_kernel(self, real_report):
        report, _ = real_report
        assert report.advice
        assert any(e.get("rules") for e in report.advice)

    def test_text_renders(self, real_report):
        report, _ = real_report
        text = format_explain(report)
        assert "winner" in text
