"""Unit tests for trace export: chrome schema, flat JSON, aggregation."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    aggregate_phases,
    chrome_trace,
    flat_json,
    write_trace,
)


def populated_tracer():
    tracer = Tracer(enabled=True)
    with tracer.span("optimize"):
        with tracer.span("tuning.stage1", candidates=5):
            pass
        with tracer.span("tuning.stage2", survivors=2):
            pass
    return tracer


class TestChromeTrace:
    def test_schema(self):
        tracer = populated_tracer()
        registry = MetricsRegistry()
        registry.counter("eval.requests").add(7)
        doc = chrome_trace(tracer, registry)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        completes = [e for e in events if e["ph"] == "X"]
        assert {m["name"] for m in metas} >= {"process_name", "thread_name"}
        assert len(completes) == 3
        for event in completes:
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["ts"] >= 0.0
            assert event["pid"] == 1 and "tid" in event
            assert "span_id" in event["args"]
        # cat is the name prefix, so viewers can filter by subsystem.
        cats = {e["name"]: e["cat"] for e in completes}
        assert cats["tuning.stage1"] == "tuning"
        assert cats["optimize"] == "optimize"
        assert doc["otherData"]["metrics"]["eval.requests"]["value"] == 7

    def test_parent_links_survive_export(self):
        doc = chrome_trace(populated_tracer(), MetricsRegistry())
        completes = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        root_id = completes["optimize"]["args"]["span_id"]
        assert completes["tuning.stage1"]["args"]["parent_id"] == root_id
        assert completes["tuning.stage2"]["args"]["parent_id"] == root_id
        assert "parent_id" not in completes["optimize"]["args"]

    def test_json_serializable(self):
        doc = chrome_trace(populated_tracer(), MetricsRegistry())
        round_trip = json.loads(json.dumps(doc))
        assert round_trip["displayTimeUnit"] == "ms"

    def test_dropped_spans_reported(self):
        tracer = Tracer(enabled=True, max_spans=1)
        for _ in range(3):
            with tracer.span("x"):
                pass
        doc = chrome_trace(tracer, MetricsRegistry())
        assert doc["otherData"]["dropped_spans"] == 2

    def test_empty_tracer_exports_cleanly(self):
        doc = chrome_trace(Tracer(enabled=True), MetricsRegistry())
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]


class TestFlatJson:
    def test_spans_and_metrics(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(2)
        doc = flat_json(populated_tracer(), registry)
        assert {s["name"] for s in doc["spans"]} == {
            "optimize", "tuning.stage1", "tuning.stage2",
        }
        for item in doc["spans"]:
            assert item["start_us"] >= 0.0
            assert item["duration_us"] >= 0.0
        assert doc["metrics"]["g"]["value"] == 2


class TestWriteTrace:
    def test_writes_valid_files(self, tmp_path):
        tracer = populated_tracer()
        registry = MetricsRegistry()
        chrome_path = tmp_path / "t.json"
        flat_path = tmp_path / "f.json"
        write_trace(str(chrome_path), tracer, registry, fmt="chrome")
        write_trace(str(flat_path), tracer, registry, fmt="flat")
        assert "traceEvents" in json.loads(chrome_path.read_text())
        assert "spans" in json.loads(flat_path.read_text())

    def test_unknown_format_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_trace(str(tmp_path / "x"), Tracer(), fmt="xml")


class TestAggregatePhases:
    def test_counts_totals_and_self_time(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
            with tracer.span("child"):
                pass
        totals = {p.name: p for p in aggregate_phases(tracer.finished())}
        assert totals["child"].count == 2
        parent = totals["parent"]
        child = totals["child"]
        assert parent.count == 1
        # Self time excludes the two direct children.
        assert parent.self_s <= parent.total_s - child.total_s + 1e-9
        assert child.self_s == pytest.approx(child.total_s)

    def test_sorted_by_total_descending(self):
        import time

        tracer = Tracer(enabled=True)
        with tracer.span("slow"):
            time.sleep(0.005)
        with tracer.span("fast"):
            pass
        totals = aggregate_phases(tracer.finished())
        assert [p.name for p in totals] == ["slow", "fast"]

    def test_empty_input(self):
        assert aggregate_phases(()) == []


class TestSearchInstants:
    """Candidate events ride along as ph:"i" instants on their own track."""

    @staticmethod
    def _search_events(t0_s, offsets_ms=(1.0, 2.0, 3.0)):
        events = [{"kind": "header", "version": 1, "t0_s": t0_s}]
        for index, t_ms in enumerate(offsets_ms):
            events.append(
                {
                    "kind": "candidate",
                    "seq": index + 1,
                    "t_ms": t_ms,
                    "fingerprint": f"fp{index}",
                    "plan": f"plan-{index}",
                    "disposition": "simulated",
                    "gflops": 100.0 + index,
                }
            )
        events.append({"kind": "winner", "seq": 99, "t_ms": 9.0})
        return events

    def test_instants_on_dedicated_named_track(self):
        tracer = populated_tracer()
        t0 = tracer.finished()[0].start_s
        doc = chrome_trace(
            tracer, MetricsRegistry(), search_events=self._search_events(t0)
        )
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 3  # candidates only, not header/winner
        tids = {e["tid"] for e in instants}
        assert len(tids) == 1
        (tid,) = tids
        metas = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["tid"] == tid
        }
        assert metas == {"search candidates"}
        for event in instants:
            assert event["s"] == "t"
            assert event["cat"] == "search"
            assert event["name"].startswith("candidate:")
            assert event["args"]["fingerprint"]
            assert event["ts"] >= 0.0

    def test_instants_time_aligned_with_spans(self):
        tracer = populated_tracer()
        spans = tracer.finished()
        base = min(s.start_s for s in spans)
        doc = chrome_trace(
            tracer,
            MetricsRegistry(),
            search_events=self._search_events(base, offsets_ms=(5.0,)),
        )
        (instant,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        # header t0 == earliest span start, candidate at +5 ms
        assert instant["ts"] == pytest.approx(5000.0, abs=1.0)

    def test_base_covers_instants_without_spans(self):
        # Degenerate path: no spans at all.  The time base must come
        # from the candidate timestamps, not default to 0.0 (which
        # would put instants at raw perf_counter microseconds).
        doc = chrome_trace(
            Tracer(enabled=True),
            MetricsRegistry(),
            search_events=self._search_events(1234.5),
        )
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants
        assert min(e["ts"] for e in instants) == pytest.approx(0.0, abs=1e-6)
        assert max(e["ts"] for e in instants) < 10_000  # microseconds, small

    def test_no_search_events_unchanged(self):
        doc = chrome_trace(populated_tracer(), MetricsRegistry())
        assert not [e for e in doc["traceEvents"] if e["ph"] == "i"]

    def test_write_trace_passes_search_events(self, tmp_path):
        import json as _json

        path = tmp_path / "t.json"
        tracer = populated_tracer()
        t0 = tracer.finished()[0].start_s
        write_trace(
            str(path),
            tracer,
            MetricsRegistry(),
            fmt="chrome",
            search_events=self._search_events(t0),
        )
        doc = _json.loads(path.read_text())
        assert [e for e in doc["traceEvents"] if e["ph"] == "i"]


class TestStitchChromeTraces:
    """Multi-worker stitching: stable pids, anchors, open spans."""

    @staticmethod
    def _worker_snapshot(worker, seq=1, open_span=False):
        from repro.obs import Tracer, build_snapshot

        tracer = Tracer(enabled=True)
        if open_span:
            context = tracer.span("evaluate", shard=f"s{worker}")
            context.__enter__()  # never exited: SIGKILL mid-evaluation
        else:
            with tracer.span("evaluate", shard=f"s{worker}"):
                pass
        return build_snapshot(
            worker, registry=MetricsRegistry(), tracer=tracer,
            seq=seq, include_spans=True,
        )

    def test_stable_pid_mapping(self):
        from repro.obs import stitch_chrome_traces

        doc = stitch_chrome_traces(
            [self._worker_snapshot(0), self._worker_snapshot(1)],
            tracer=populated_tracer(),
            metrics=MetricsRegistry(),
        )
        names = {
            (m["pid"], m["args"]["name"])
            for m in doc["traceEvents"]
            if m["ph"] == "M" and m["name"] == "process_name"
        }
        assert names == {
            (1, "coordinator"), (2, "worker-00"), (3, "worker-01"),
        }
        assert doc["otherData"]["workers"] == [0, 1]

    def test_latest_snapshot_per_worker_wins(self):
        from repro.obs import stitch_chrome_traces

        doc = stitch_chrome_traces(
            [self._worker_snapshot(0, seq=1), self._worker_snapshot(0, seq=5)],
            tracer=Tracer(enabled=True),
            metrics=MetricsRegistry(),
        )
        worker_spans = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 2
        ]
        assert len(worker_spans) == 1  # not both snapshots' copies

    def test_open_span_renders_ending_at_flush(self):
        from repro.obs import stitch_chrome_traces

        doc = stitch_chrome_traces(
            [self._worker_snapshot(3, open_span=True)],
            tracer=Tracer(enabled=True),
            metrics=MetricsRegistry(),
        )
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        (span,) = spans
        assert span["pid"] == 5  # worker 3 + base 2
        assert span["args"]["open"] is True
        assert span["dur"] >= 0.0

    def test_timestamps_nonnegative_and_json_ready(self):
        from repro.obs import stitch_chrome_traces

        doc = stitch_chrome_traces(
            [self._worker_snapshot(0)],
            tracer=populated_tracer(),
            metrics=MetricsRegistry(),
        )
        for event in doc["traceEvents"]:
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
        json.dumps(doc)

    def test_stitch_run_trace_reads_obs_dir(self, tmp_path):
        from repro.obs import stitch_run_trace, write_snapshot
        from repro.obs.live import snapshot_path

        obs = tmp_path / "obs"
        obs.mkdir()
        write_snapshot(
            snapshot_path(str(obs), 0), self._worker_snapshot(0)
        )
        doc = stitch_run_trace(
            str(tmp_path),
            tracer=Tracer(enabled=True),
            metrics=MetricsRegistry(),
        )
        assert doc["otherData"]["workers"] == [0]

    def test_write_trace_routes_stitch_root(self, tmp_path):
        from repro.obs import write_snapshot
        from repro.obs.live import snapshot_path

        obs = tmp_path / "obs"
        obs.mkdir()
        write_snapshot(
            snapshot_path(str(obs), 1), self._worker_snapshot(1)
        )
        out = tmp_path / "stitched.json"
        write_trace(
            str(out),
            populated_tracer(),
            MetricsRegistry(),
            fmt="chrome",
            stitch_root=str(tmp_path),
        )
        doc = json.loads(out.read_text())
        assert doc["otherData"]["workers"] == [1]
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert {1, 3} <= pids
