"""Unit tests for the span tracer: nesting, threading, no-op behavior."""

import threading
import time

import pytest

from repro.obs import (
    Tracer,
    configure_tracing,
    get_tracer,
    span,
    traced,
    tracing_enabled,
)
from repro.obs.tracer import _NOOP


@pytest.fixture
def global_tracing():
    """Enable the process tracer for a test, restore cleanly after."""
    tracer = configure_tracing(True, clear=True)
    try:
        yield tracer
    finally:
        configure_tracing(False, clear=True)


class TestNesting:
    def test_parent_child_links_and_depth(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id is None and outer.depth == 0
        assert middle.parent_id == outer.span_id and middle.depth == 1
        assert inner.parent_id == middle.span_id and inner.depth == 2

    def test_finished_in_completion_order(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        names = [s.name for s in tracer.finished()]
        assert names == ["b", "c", "a"]

    def test_siblings_share_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("one") as one:
                pass
            with tracer.span("two") as two:
                pass
        assert one.parent_id == root.span_id
        assert two.parent_id == root.span_id
        assert one.depth == two.depth == 1

    def test_span_ids_unique_and_increasing(self):
        tracer = Tracer(enabled=True)
        for _ in range(5):
            with tracer.span("x"):
                pass
        ids = [s.span_id for s in tracer.finished()]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_timestamps_ordered(self):
        tracer = Tracer(enabled=True)
        with tracer.span("timed"):
            time.sleep(0.002)
        (item,) = tracer.finished()
        assert item.end_s > item.start_s
        assert item.duration_s >= 0.002

    def test_exception_sets_error_and_unwinds(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("no")
        (item,) = tracer.finished()
        assert item.attributes["error"] == "RuntimeError"
        assert tracer.current_span() is None  # stack fully unwound

    def test_attributes_and_annotate(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", candidates=7):
            tracer.annotate(feasible=3)
        (item,) = tracer.finished()
        assert item.attributes == {"candidates": 7, "feasible": 3}

    def test_decorator_records_call(self):
        tracer = Tracer(enabled=True)

        @tracer.traced("deco")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        (item,) = tracer.finished()
        assert item.name == "deco"
        assert add.__name__ == "add"

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer(enabled=True, max_spans=3)
        for _ in range(5):
            with tracer.span("x"):
                pass
        assert len(tracer.finished()) == 3
        assert tracer.dropped == 2
        tracer.clear()
        assert tracer.finished() == ()
        assert tracer.dropped == 0


class TestThreading:
    def test_threads_get_independent_stacks(self):
        tracer = Tracer(enabled=True)
        barrier = threading.Barrier(3)

        def work(label):
            with tracer.span(f"root.{label}"):
                barrier.wait()  # all three spans open simultaneously
                with tracer.span(f"child.{label}"):
                    pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.finished()
        assert len(spans) == 6
        roots = [s for s in spans if s.name.startswith("root.")]
        children = [s for s in spans if s.name.startswith("child.")]
        # Concurrent roots never adopt each other as parents.
        assert all(s.parent_id is None and s.depth == 0 for s in roots)
        by_id = {s.span_id: s for s in spans}
        for child in children:
            parent = by_id[child.parent_id]
            assert parent.thread_id == child.thread_id
            assert parent.name == f"root.{child.name.split('.', 1)[1]}"

    def test_interleaved_spans_from_evaluate_batch(self, global_tracing):
        from repro.dsl import parse
        from repro.ir import build_ir
        from repro.codegen import seed_plan_from_pragma
        from repro.tuning import PlanEvaluator

        src = """
        parameter L=64, M=64, N=64;
        iterator k, j, i;
        double in[L,M,N], out[L,M,N];
        copyin in;
        #pragma stream k block (32,8)
        stencil blur (B, A) {
          B[k][j][i] = (A[k][j][i] + A[k][j][i+1] + A[k][j][i-1]) / 3.0;
        }
        blur (out, in);
        copyout out;
        """
        ir = build_ir(parse(src))
        base = seed_plan_from_pragma(ir, ir.kernels[0])
        plans = [
            base.replace(block=block)
            for block in [(32, 8), (32, 16), (16, 8), (16, 16), (8, 8), (64, 4)]
        ]
        evaluator = PlanEvaluator()
        results = evaluator.evaluate_batch(ir, plans, workers=4)
        assert any(r is not None for r in results)
        spans = global_tracing.finished()
        batch = [s for s in spans if s.name == "eval.batch"]
        assert len(batch) == 1
        assert batch[0].attributes["workers"] == 4
        assert batch[0].attributes["candidates"] == len(plans)
        # Per-thread hierarchies stay well-formed: every parented span's
        # parent lives on the same thread and encloses it in time.
        by_id = {s.span_id: s for s in spans}
        for item in spans:
            if item.parent_id is None:
                continue
            parent = by_id[item.parent_id]
            assert parent.thread_id == item.thread_id
            assert parent.start_s <= item.start_s
            assert parent.end_s >= item.end_s


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing_enabled()
        context = span("anything", expensive=1)
        assert context is _NOOP
        with context as opened:
            assert opened is None
        assert get_tracer().finished() == ()

    def test_disabled_private_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            with tracer.span("y"):
                pass
        assert tracer.finished() == ()

    def test_disabled_decorator_passes_through(self):
        calls = []

        @traced("never")
        def func():
            calls.append(1)
            return 42

        assert func() == 42
        assert calls == [1]
        assert get_tracer().finished() == ()

    def test_disabled_span_overhead_is_small(self):
        # Behavioral guard (the hard <2% budget lives in the evaluator
        # benchmark): 100k disabled span entries must be ~instant.
        start = time.perf_counter()
        for _ in range(100_000):
            with span("hot"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5

    def test_configure_enables_and_clears(self):
        tracer = configure_tracing(True, clear=True)
        try:
            with span("visible"):
                pass
            assert [s.name for s in tracer.finished()] == ["visible"]
        finally:
            configure_tracing(False, clear=True)
        assert get_tracer().finished() == ()
