"""Search-telemetry tests: the candidate accounting invariant.

The headline guarantee: the number of ``candidate`` records in a search
log equals ``EvalStats.requests`` *exactly* — cache hits, prescreen
rejections, infeasible plans, injected faults, retries and degraded
re-runs included.  Demonstrated on a clean full-pipeline run and under
seeded chaos.
"""

import json
import threading

import pytest

from repro.codegen import seed_plan_from_pragma
from repro.dsl import parse
from repro.ir import build_ir
from repro.obs.search import SearchLog, log_context, read_events
from repro.pipeline import optimize
from repro.resilience import FaultInjector, RetryPolicy, UsageError
from repro.tuning import HierarchicalTuner, PlanEvaluator

SMOOTHER_SRC = """
parameter L=128, M=128, N=128;
iterator k, j, i;
double in[L,M,N], out[L,M,N], a, b, h2inv;
copyin in, h2inv, a, b;
iterate 8;
#pragma stream k block (32,16)
stencil jacobi (B, A, h2inv, a, b) {
  double c = b * h2inv;
  B[k][j][i] = a*A[k][j][i] - c*(A[k][j][i+1] + A[k][j][i-1]
    + A[k][j+1][i] + A[k][j-1][i] + A[k+1][j][i] + A[k-1][j][i]
    - A[k][j][i]*6.0);
}
jacobi (out, in, h2inv, a, b);
copyout out;
"""


@pytest.fixture(scope="module")
def smoother_ir():
    return build_ir(parse(SMOOTHER_SRC))


def _tuned(ir, **evaluator_kwargs):
    log = SearchLog()
    engine = PlanEvaluator(search_log=log, **evaluator_kwargs)
    base = seed_plan_from_pragma(ir, ir.kernels[0]).replace(
        placements=(("in", "shmem"),)
    )
    tuner = HierarchicalTuner(ir, evaluator=engine)
    tuner.tune(base)
    return log, engine


class TestSearchLogBasics:
    def test_header_first_with_device_payload(self):
        from repro.gpu.device import P100

        log = SearchLog(device=P100)
        events = log.events()
        assert events[0]["kind"] == "header"
        assert events[0]["device"]["name"] == P100.name
        assert events[0]["device"]["ridge_dram"] == P100.ridge("dram")

    def test_emit_stamps_seq_time_and_context(self):
        log = SearchLog()
        with log.context(stage="stage1", kernels="k"):
            log.emit("probe", value=1)
        (event,) = [e for e in log.events() if e["kind"] == "probe"]
        assert event["seq"] == 1
        assert event["t_ms"] >= 0.0
        assert event["context"] == {"stage": "stage1", "kernels": "k"}

    def test_context_nests_and_restores(self):
        log = SearchLog()
        with log.context(a=1):
            with log.context(b=2):
                log.emit("inner")
            log.emit("outer")
        log.emit("bare")
        events = {e["kind"]: e for e in log.events()}
        assert events["inner"]["context"] == {"a": 1, "b": 2}
        assert events["outer"]["context"] == {"a": 1}
        assert "context" not in events["bare"]

    def test_capture_use_hands_tags_to_worker_threads(self):
        log = SearchLog()
        with log.context(stage="stage2"):
            tags = log.capture()

        def worker():
            with log.use(tags):
                log.emit("from-worker")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        (event,) = [e for e in log.events() if e["kind"] == "from-worker"]
        assert event["context"] == {"stage": "stage2"}

    def test_log_context_is_noop_without_log(self):
        with log_context(None, stage="x"):
            pass  # must not raise

    def test_counts_split_candidate_dispositions(self, smoother_ir):
        log, engine = _tuned(smoother_ir)
        counts = log.counts()
        assert counts["candidate"] == log.candidate_count()
        split = sum(
            count
            for name, count in counts.items()
            if name.startswith("candidate.")
        )
        assert split == counts["candidate"]


class TestJsonlRoundtrip:
    def test_flush_writes_readable_jsonl(self, smoother_ir, tmp_path):
        path = tmp_path / "search.jsonl"
        log = SearchLog(path=str(path))
        engine = PlanEvaluator(search_log=log)
        base = seed_plan_from_pragma(
            smoother_ir, smoother_ir.kernels[0]
        ).replace(placements=(("in", "shmem"),))
        HierarchicalTuner(smoother_ir, evaluator=engine).tune(base)
        log.close()
        events = read_events(str(path))
        assert events[0]["kind"] == "header"
        candidates = [e for e in events if e["kind"] == "candidate"]
        assert len(candidates) == engine.stats.requests
        # every line is self-contained JSON (read_events parsed it), and
        # every candidate carries the core fields
        for event in candidates:
            assert event["fingerprint"]
            assert event["family"]
            assert event["disposition"]
            assert "config" in event

    def test_read_events_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header"}\nnot json\n')
        with pytest.raises(UsageError):
            read_events(str(path))

    def test_read_events_requires_header(self, tmp_path):
        path = tmp_path / "headerless.jsonl"
        path.write_text('{"kind": "candidate"}\n')
        with pytest.raises(UsageError):
            read_events(str(path))


class TestAccountingInvariant:
    def test_candidates_equal_requests_clean_run(self, smoother_ir):
        log, engine = _tuned(smoother_ir)
        assert log.candidate_count() == engine.stats.requests
        counts = log.counts()
        assert (
            counts.get("candidate.cache-hit", 0)
            + counts.get("candidate.cache-hit-infeasible", 0)
            == engine.stats.hits
        )
        assert counts.get("candidate.screened", 0) == engine.stats.screened

    def test_full_pipeline_invariant(self, smoother_ir):
        log = SearchLog()
        engine = PlanEvaluator(search_log=log)
        outcome = optimize(smoother_ir, top_k=2, evaluator=engine)
        assert log.candidate_count() == outcome.eval_stats.requests
        kinds = {e["kind"] for e in log.events()}
        assert "winner" in kinds

    def test_invariant_under_chaos_with_retries(self, smoother_ir):
        injector = FaultInjector(rate=0.2, seed=3, transient_failures=1)
        log, engine = _tuned(
            smoother_ir,
            fault_injector=injector,
            retry=RetryPolicy(max_retries=2, base_delay_s=0.0),
        )
        assert injector.injected > 0
        assert log.candidate_count() == engine.stats.requests
        assert log.counts().get("retry", 0) >= injector.injected

    def test_invariant_under_persistent_faults_skip(self, smoother_ir):
        injector = FaultInjector(rate=0.1, seed=11)
        log, engine = _tuned(
            smoother_ir, fault_injector=injector, on_error="skip"
        )
        assert engine.stats.failures > 0
        assert log.candidate_count() == engine.stats.requests
        counts = log.counts()
        assert counts.get("candidate.error", 0) > 0
        assert counts.get("skip", 0) == engine.stats.failures

    def test_invariant_under_degraded_mode(self, smoother_ir):
        injector = FaultInjector(rate=0.1, seed=11)
        log, engine = _tuned(
            smoother_ir, fault_injector=injector, on_error="degrade"
        )
        assert log.candidate_count() == engine.stats.requests
        if engine.stats.degraded:
            assert log.counts().get("degraded", 0) == engine.stats.degraded

    def test_invariant_with_parallel_workers(self, smoother_ir):
        log, engine = _tuned(smoother_ir, workers=4)
        assert log.candidate_count() == engine.stats.requests
        # batch workers inherit the spawning thread's context tags
        stages = {
            e["context"].get("stage")
            for e in log.events()
            if e["kind"] == "candidate" and "context" in e
        }
        assert "stage1" in stages


class TestPipelineEvents:
    @pytest.fixture(scope="class")
    def pipeline_log(self, smoother_ir):
        log = SearchLog()
        engine = PlanEvaluator(search_log=log)
        outcome = optimize(smoother_ir, top_k=2, evaluator=engine)
        return log, outcome

    def test_winner_links_to_candidates(self, pipeline_log):
        log, outcome = pipeline_log
        (winner,) = [e for e in log.events() if e["kind"] == "winner"]
        assert winner["variant"] == outcome.variant
        assert winner["plans"]
        fingerprints = {
            e["fingerprint"]
            for e in log.events()
            if e["kind"] == "candidate"
        }
        for plan in winner["plans"]:
            assert plan["fingerprint"] in fingerprints

    def test_candidate_result_payload(self, pipeline_log):
        log, _ = pipeline_log
        simulated = [
            e
            for e in log.events()
            if e["kind"] == "candidate" and e["disposition"] == "simulated"
        ]
        assert simulated
        for event in simulated[:10]:
            assert event["gflops"] > 0
            assert event["time_ms"] > 0
            assert 0 < event["occupancy"] <= 1
            assert event["counters"]["oi_dram"] > 0

    def test_deep_tune_context_tags(self, pipeline_log):
        log, _ = pipeline_log
        degrees = {
            e["context"].get("degree")
            for e in log.events()
            if e["kind"] == "candidate"
            and e.get("context", {}).get("phase") == "deep-tune"
        }
        assert len(degrees - {None}) >= 2

    def test_json_serializable(self, pipeline_log):
        log, _ = pipeline_log
        for event in log.events():
            json.dumps(event, default=str)
