"""Per-process snapshots, cross-process merge, and the flusher."""

import json
import os
import random
import threading
import time

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.obs import MetricsRegistry, Tracer
from repro.obs.live import (
    SnapshotFlusher,
    build_snapshot,
    load_snapshots,
    merge_snapshots,
    publish_stats_dict,
    snapshot_path,
    span_wall_ts,
    write_snapshot,
)


def _registry(counters=(), gauges=(), observations=()):
    reg = MetricsRegistry()
    for name, value in counters:
        reg.counter(name).add(value)
    for name, value, ts in gauges:
        reg.gauge(name).set(value, ts=ts)
    for name, value in observations:
        reg.histogram(name).observe(value)
    return reg


class TestSnapshots:
    def test_build_snapshot_shape(self):
        reg = _registry(counters=[("eval.requests", 3)])
        snap = build_snapshot(2, registry=reg, seq=7)
        assert snap["worker"] == 2
        assert snap["seq"] == 7
        assert snap["pid"] == os.getpid()
        assert snap["metrics"]["eval.requests"]["value"] == 3
        assert {"wall_ts", "perf_s"} <= set(snap["anchor"])
        assert "spans" not in snap

    def test_spans_ride_along_when_asked(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            snap = build_snapshot(
                0, registry=MetricsRegistry(), tracer=tracer,
                include_spans=True,
            )
        assert [s["name"] for s in snap["spans"]] == ["inner"]
        assert [s["name"] for s in snap["open_spans"]] == ["outer"]
        assert snap["open_spans"][0]["end_s"] is None

    def test_span_wall_ts_roundtrip(self):
        anchor = {"wall_ts": 1000.0, "perf_s": 50.0}
        assert span_wall_ts(52.5, anchor) == pytest.approx(1002.5)

    def test_write_and_load(self, tmp_path):
        obs = str(tmp_path)
        for worker in (1, 0):
            snap = build_snapshot(
                worker, registry=_registry(counters=[("n", worker + 1)])
            )
            write_snapshot(snapshot_path(obs, worker), snap)
        loaded = load_snapshots(obs)
        assert [s["worker"] for s in loaded] == [0, 1]

    def test_load_skips_garbage_and_merged(self, tmp_path):
        obs = str(tmp_path)
        write_snapshot(
            snapshot_path(obs, 0),
            build_snapshot(0, registry=MetricsRegistry()),
        )
        (tmp_path / "worker-01.metrics.json").write_text("{torn")
        (tmp_path / "merged.metrics.json").write_text(
            json.dumps(build_snapshot(-1, registry=MetricsRegistry()))
        )
        (tmp_path / "notes.txt").write_text("hi")
        loaded = load_snapshots(obs)
        assert [s["worker"] for s in loaded] == [0]

    def test_load_missing_dir_is_empty(self, tmp_path):
        assert load_snapshots(str(tmp_path / "nope")) == []


class TestMerge:
    def test_counters_sum(self):
        snaps = [
            build_snapshot(i, registry=_registry(counters=[("n", 5)]))
            for i in range(3)
        ]
        merged = merge_snapshots(snaps)
        assert merged.counter("n").value == 15

    def test_gauges_last_writer_wins_by_ts(self):
        old = build_snapshot(
            0, registry=_registry(gauges=[("g", 1.0, 100.0)])
        )
        new = build_snapshot(
            1, registry=_registry(gauges=[("g", 2.0, 200.0)])
        )
        for order in ([old, new], [new, old]):
            assert merge_snapshots(order).gauge("g").value == 2.0

    def test_histograms_bucket_merge(self):
        snaps = [
            build_snapshot(i, registry=_registry(observations=[("h", v)]))
            for i, v in enumerate((0.001, 0.2, 7.0))
        ]
        merged = merge_snapshots(snaps)
        h = merged.histogram("h")
        assert h.count == 3
        assert h.quantile(0.0) == pytest.approx(0.001)
        assert h.quantile(1.0) == pytest.approx(7.0)

    def test_exclude_prefixes(self):
        snap = build_snapshot(
            0,
            registry=_registry(
                counters=[("eval.requests", 9), ("distrib.steals", 2)]
            ),
        )
        merged = merge_snapshots([snap], exclude_prefixes=("eval.",))
        names = dict(merged.snapshot())
        assert "eval.requests" not in names
        assert names["distrib.steals"]["value"] == 2

    def test_fold_onto_existing_registry(self):
        base = _registry(counters=[("n", 1)])
        merged = merge_snapshots(
            [build_snapshot(0, registry=_registry(counters=[("n", 2)]))],
            registry=base,
        )
        assert merged is base
        assert base.counter("n").value == 3


# Exact-in-float values: sums of multiples of 0.25 carry no rounding,
# so snapshot merges in any order produce bit-identical sums/means.
_exact = st.integers(min_value=0, max_value=40).map(lambda n: n * 0.25)


@st.composite
def _snapshot_specs(draw):
    specs = []
    n = draw(st.integers(min_value=1, max_value=4))
    gauge_ts = draw(
        st.lists(
            st.integers(min_value=0, max_value=10**6),
            min_size=n, max_size=n, unique=True,
        )
    )
    for i in range(n):
        specs.append(
            {
                "counters": draw(
                    st.dictionaries(
                        st.sampled_from(["a", "b", "c"]),
                        st.integers(min_value=0, max_value=100),
                        max_size=3,
                    )
                ),
                "gauge": (draw(_exact), float(gauge_ts[i])),
                "observations": draw(
                    st.lists(_exact, min_size=0, max_size=6)
                ),
            }
        )
    return specs


def _snapshot_from_spec(worker, spec):
    reg = _registry(
        counters=spec["counters"].items(),
        gauges=[("g", spec["gauge"][0], spec["gauge"][1])],
        observations=[("h", v) for v in spec["observations"]],
    )
    return build_snapshot(worker, registry=reg, seq=1)


class TestMergeCommutativity:
    @settings(max_examples=60, deadline=None)
    @given(specs=_snapshot_specs(), seed=st.integers(0, 2**16))
    def test_fold_order_never_changes_the_result(self, specs, seed):
        snaps = [_snapshot_from_spec(i, s) for i, s in enumerate(specs)]
        shuffled = list(snaps)
        random.Random(seed).shuffle(shuffled)
        assert (
            merge_snapshots(snaps).snapshot()
            == merge_snapshots(shuffled).snapshot()
        )

    @settings(max_examples=30, deadline=None)
    @given(specs=_snapshot_specs())
    def test_fold_is_associative(self, specs):
        snaps = [_snapshot_from_spec(i, s) for i, s in enumerate(specs)]
        left = merge_snapshots(snaps)
        right = MetricsRegistry()
        for snap in snaps:
            merge_snapshots([snap], registry=right)
        assert left.snapshot() == right.snapshot()


class TestPublishStats:
    def test_counters_and_timing_histograms(self):
        reg = MetricsRegistry()
        publish_stats_dict(
            reg, {"requests": 4, "hits": 1, "wall_s": 0.5, "cpu_s": 0.0}
        )
        snap = reg.snapshot()
        assert snap["eval.requests"]["value"] == 4
        assert snap["eval.wall_s"]["count"] == 1
        assert "eval.cpu_s" not in snap  # zero timing -> no observation

    def test_negative_derived_delta_skipped(self):
        reg = MetricsRegistry()
        publish_stats_dict(reg, {"simulations": -2, "requests": 1})
        snap = reg.snapshot()
        assert "eval.simulations" not in snap
        assert snap["eval.requests"]["value"] == 1


class TestFlusher:
    def test_flush_writes_readable_snapshot(self, tmp_path):
        path = str(tmp_path / "worker-00.metrics.json")
        reg = _registry(counters=[("n", 2)])
        flusher = SnapshotFlusher(path, worker=0, registry=reg)
        snap = flusher.flush()
        assert snap["seq"] == 1
        on_disk = json.loads(open(path).read())
        assert on_disk["metrics"]["n"]["value"] == 2

    def test_collect_runs_before_each_flush(self, tmp_path):
        path = str(tmp_path / "worker-00.metrics.json")
        reg = MetricsRegistry()
        calls = []

        def collect():
            calls.append(1)
            reg.counter("n").add(1)

        flusher = SnapshotFlusher(path, worker=0, registry=reg, collect=collect)
        flusher.flush()
        flusher.flush()
        assert len(calls) == 2
        assert json.loads(open(path).read())["metrics"]["n"]["value"] == 2

    def test_stop_performs_final_flush(self, tmp_path):
        path = str(tmp_path / "worker-00.metrics.json")
        reg = _registry(counters=[("n", 1)])
        with SnapshotFlusher(path, worker=0, interval_s=60.0, registry=reg):
            assert not os.path.exists(path)  # first interval far away
        assert json.loads(open(path).read())["metrics"]["n"]["value"] == 1

    def test_periodic_flushes_advance_seq(self, tmp_path):
        path = str(tmp_path / "worker-00.metrics.json")
        flusher = SnapshotFlusher(
            path, worker=0, interval_s=0.05, registry=MetricsRegistry()
        ).start()
        try:
            deadline = time.time() + 5.0
            seq = 0
            while time.time() < deadline and seq < 2:
                if os.path.exists(path):
                    seq = json.loads(open(path).read())["seq"]
                time.sleep(0.02)
            assert seq >= 2
        finally:
            flusher.stop(final_flush=False)

    def test_concurrent_flush_safe(self, tmp_path):
        path = str(tmp_path / "worker-00.metrics.json")
        flusher = SnapshotFlusher(path, worker=0, registry=MetricsRegistry())
        threads = [
            threading.Thread(target=flusher.flush) for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert json.loads(open(path).read())["seq"] == 8
