"""HTML report tests: standalone document, valid SVG, all marks plotted."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.obs.report_html import render_html
from repro.obs.search import SearchLog
from repro.pipeline import optimize
from repro.suite import load_ir
from repro.tuning import PlanEvaluator


@pytest.fixture(scope="module")
def pipeline_events():
    from repro.gpu.device import P100

    from repro.obs import configure_tracing, get_tracer

    log = SearchLog(device=P100)
    engine = PlanEvaluator(search_log=log)
    configure_tracing(True, clear=True)
    try:
        outcome = optimize(load_ir("addsgd4"), top_k=2, evaluator=engine)
        log.summary(outcome.eval_stats)
        log.phases(get_tracer().finished())
    finally:
        configure_tracing(False)
    return log.events()


@pytest.fixture(scope="module")
def document(pipeline_events):
    return render_html(pipeline_events, title="test report")


def _svgs(document):
    return re.findall(r"<svg.*?</svg>", document, re.S)


class TestDocument:
    def test_standalone_html(self, document):
        assert document.startswith("<!DOCTYPE html>")
        assert "<html" in document and "</html>" in document
        # self-contained: no external scripts, stylesheets or images
        assert "<script" not in document
        assert "http://" not in document and "https://" not in document
        assert "<link" not in document

    def test_title_escaped(self, pipeline_events):
        doc = render_html(pipeline_events, title="<b>&x")
        assert "<title>&lt;b&gt;&amp;x</title>" in doc

    def test_sections_present(self, document):
        for heading in (
            "Roofline", "Convergence", "Why this plan",
            "Phase timings", "Dispositions",
        ):
            assert heading in document

    def test_dark_mode_palette_declared(self, document):
        assert "prefers-color-scheme: dark" in document
        assert "--series-1" in document


class TestSvg:
    def test_two_wellformed_svgs(self, document):
        svgs = _svgs(document)
        assert len(svgs) == 2
        for svg in svgs:
            ET.fromstring(svg)  # raises on malformed markup

    def test_roofline_plots_every_measured_candidate(
        self, document, pipeline_events
    ):
        measured = [
            e
            for e in pipeline_events
            if e.get("kind") == "candidate" and e.get("gflops") is not None
        ]
        roofline = _svgs(document)[0]
        # every measured candidate is one circle; the winner's circle is
        # re-drawn on top, so count >= measured
        assert roofline.count("<circle") >= len(measured)

    def test_every_mark_has_a_tooltip(self, document):
        for svg in _svgs(document):
            assert svg.count("<circle") == svg.count("<title")

    def test_marks_inside_viewbox(self, document):
        for svg in _svgs(document):
            root = ET.fromstring(svg)
            width, height = (
                float(v) for v in root.get("viewBox").split()[2:]
            )
            for cx, cy in re.findall(r"cx='([-\d.]+)' cy='([-\d.]+)'", svg):
                assert 0 <= float(cx) <= width
                assert 0 <= float(cy) <= height

    def test_roofline_reference_lines_drawn(self, document):
        roofline = _svgs(document)[0]
        assert "peak" in roofline  # compute roof labelled
        assert "ridge" in roofline
        assert "operational intensity" in roofline

    def test_winner_highlighted(self, document):
        roofline = _svgs(document)[0]
        assert "var(--series-2)" in roofline


class TestDegenerateStreams:
    def test_no_measured_candidates_still_renders(self):
        events = [
            {"kind": "header", "version": 1, "t0_s": 0.0},
            {"kind": "candidate", "seq": 1, "t_ms": 1.0,
             "fingerprint": "x", "family": "f", "plan": "p",
             "config": {}, "disposition": "infeasible",
             "reason": "nope"},
        ]
        doc = render_html(events)
        assert "no measured candidates" in doc
        assert "<!DOCTYPE html>" in doc

    def test_missing_device_payload(self, pipeline_events):
        events = [
            dict(e, **({"device": None} if e.get("kind") == "header" else {}))
            for e in pipeline_events
        ]
        events[0].pop("device", None)
        doc = render_html(events)
        assert "device unknown" in doc
